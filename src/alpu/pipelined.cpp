#include "alpu/pipelined.hpp"

#include "common/check.hpp"

namespace alpu::hw {

PipelinedAlpu::PipelinedAlpu(sim::Engine& engine, std::string name,
                             const PipelinedAlpuConfig& config)
    : sim::Component(engine, std::move(name)),
      config_(config),
      rtl_(config.flavor, config.total_cells, config.block_size,
           config.significant_mask),
      clock_(engine, config.clock, [this] { return tick(); }),
      cross_block_cycles_(
          config.total_cells / config.block_size >= 16 ? 2 : 1),
      header_fifo_(config.header_fifo_depth),
      command_fifo_(config.command_fifo_depth),
      result_fifo_(config.result_fifo_depth) {}

bool PipelinedAlpu::push_probe(const Probe& probe) {
  if (!header_fifo_.try_push(probe)) return false;
  clock_.wake();
  return true;
}

bool PipelinedAlpu::push_command(const Command& cmd) {
  if (!command_fifo_.try_push(cmd)) return false;
  clock_.wake();
  return true;
}

std::optional<Response> PipelinedAlpu::pop_result() {
  auto r = result_fifo_.try_pop();
  if (r.has_value()) clock_.wake();
  return r;
}

void PipelinedAlpu::emit(Response r) {
  r.issued_at = engine().now();
  result_fifo_.push(r);
}

bool PipelinedAlpu::tick() {
  ++stats_.cycles;

  if (op_ != Op::kNone) {
    switch (op_) {
      case Op::kMatch: {
        // Count down through the stages; the compare latches the match
        // at stage 2, and a successful match's delete commits on the
        // last stage.  No data movement happens during a match op
        // outside the delete itself (Section III-B enables transfers
        // only on match-delete or during inserts).
        const unsigned total = match_stages();
        const unsigned done = total - stage_left_;
        if (done + 1 == 2) {
          latched_match_ = rtl_.match(current_probe_);
        }
        --stage_left_;
        if (stage_left_ == 0) {
          finish_match();
          op_ = Op::kNone;
        }
        return true;
      }
      case Op::kInsert: {
        if (pending_insert_.has_value()) {
          if (rtl_.occupancy() == rtl_.capacity()) {
            // Past the granted count (firmware protocol violation):
            // nowhere to put it — drop, as the transaction model does.
            ALPU_DEBUG_ASSERT(
                !config_.assert_on_insert_drop,
                "insert dropped by a full ALPU (grant overrun)");
            ++stats_.inserts_dropped;
            pending_insert_.reset();
            stage_left_ = 1;
            return true;
          }
          if (!rtl_.can_insert()) {
            // Cell 0 still occupied: burn a compaction cycle (the real
            // block-boundary bubble).
            ++stats_.insert_bubbles;
            (void)rtl_.step(std::nullopt, std::nullopt);
            return true;
          }
          const bool ok = rtl_.step(pending_insert_, std::nullopt);
          ALPU_ASSERT(ok, "insert issued while cell 0 was occupied");
          (void)ok;
          pending_insert_.reset();
          ++stats_.inserts;
          stage_left_ = 1;  // settle cycle (the "every other cycle")
          return true;
        }
        // Settle cycle doubles as a compaction step.
        (void)rtl_.step(std::nullopt, std::nullopt);
        --stage_left_;
        if (stage_left_ == 0) {
          op_ = Op::kNone;
          if (held_probe_.has_value()) retry_pending_ = true;
        }
        return true;
      }
      case Op::kDecode: {
        --stage_left_;
        if (stage_left_ == 0) {
          op_ = Op::kNone;
          ALPU_ASSERT(!command_fifo_.empty(),
                      "decode stage with empty command FIFO");
          decode(command_fifo_.pop());
        }
        return true;
      }
      case Op::kNone:
        break;
    }
  }
  return start_next();
}

bool PipelinedAlpu::start_next() {
  switch (state_) {
    case State::kMatch: {
      if (held_probe_.has_value() && !result_fifo_.full()) {
        current_probe_ = *held_probe_;
        ++stats_.held_retries;
        op_ = Op::kMatch;
        stage_left_ = match_stages();
        return true;
      }
      if (!command_fifo_.empty() && !result_fifo_.full()) {
        state_ = State::kReadCommand;
        op_ = Op::kDecode;
        stage_left_ = 1;
        return true;
      }
      if (!header_fifo_.empty() && !result_fifo_.full()) {
        current_probe_ = header_fifo_.pop();
        ++stats_.probes_accepted;
        op_ = Op::kMatch;
        stage_left_ = match_stages();
        return true;
      }
      return false;
    }
    case State::kReadCommand: {
      if (command_fifo_.empty()) {
        state_ = State::kMatch;
        return start_next();
      }
      if (result_fifo_.full()) return false;
      op_ = Op::kDecode;
      stage_left_ = 1;
      return true;
    }
    case State::kInsertMode: {
      if (!command_fifo_.empty()) {
        if (command_fifo_.front().kind == CommandKind::kInsert) {
          const Command cmd = command_fifo_.pop();
          Cell cell;
          cell.bits = cmd.bits;
          cell.mask = cmd.mask;
          cell.cookie = cmd.cookie;
          cell.valid = true;
          pending_insert_ = cell;
          op_ = Op::kInsert;
          stage_left_ = 1;
          return true;
        }
        op_ = Op::kDecode;
        stage_left_ = 1;
        return true;
      }
      if (retry_pending_ && held_probe_.has_value() &&
          !result_fifo_.full()) {
        current_probe_ = *held_probe_;
        retry_pending_ = false;
        ++stats_.held_retries;
        op_ = Op::kMatch;
        stage_left_ = match_stages();
        return true;
      }
      if (held_probe_.has_value()) return false;
      if (!header_fifo_.empty() && !result_fifo_.full()) {
        current_probe_ = header_fifo_.pop();
        ++stats_.probes_accepted;
        op_ = Op::kMatch;
        stage_left_ = match_stages();
        return true;
      }
      // Idle insert mode: transfers are enabled — run compaction until
      // the datapath quiesces, then sleep.
      if (!rtl_.quiescent()) {
        (void)rtl_.step(std::nullopt, std::nullopt);
        return true;
      }
      return false;
    }
  }
  return false;
}

void PipelinedAlpu::finish_match() {
  const bool was_held = held_probe_.has_value() &&
                        held_probe_->seq == current_probe_.seq;
  if (latched_match_.hit) {
    // Stage 6: commit the delete at the latched location (no movement
    // occurred since the compare, so the location is still current).
    const bool ok =
        rtl_.step(std::nullopt, latched_match_.location);
    ALPU_ASSERT(ok, "latched delete location no longer names a valid cell");
    (void)ok;
    emit(Response{ResponseKind::kMatchSuccess, latched_match_.cookie, 0,
                  current_probe_.seq, 0});
    ++stats_.match_successes;
    if (was_held) {
      held_probe_.reset();
      retry_pending_ = false;
    }
    return;
  }
  if (state_ == State::kInsertMode) {
    held_probe_ = current_probe_;
    return;
  }
  emit(Response{ResponseKind::kMatchFailure, 0, 0, current_probe_.seq, 0});
  ++stats_.match_failures;
  if (was_held) {
    held_probe_.reset();
    retry_pending_ = false;
  }
}

void PipelinedAlpu::decode(const Command& cmd) {
  if (state_ == State::kReadCommand) {
    switch (cmd.kind) {
      case CommandKind::kReset:
        rtl_.reset();
        ++stats_.resets;
        if (held_probe_.has_value()) {
          emit(Response{ResponseKind::kMatchFailure, 0, 0,
                        held_probe_->seq, 0});
          ++stats_.match_failures;
          held_probe_.reset();
          retry_pending_ = false;
        }
        state_ = State::kMatch;
        break;
      case CommandKind::kStartInsert:
        emit(Response{
            ResponseKind::kStartAck, 0,
            static_cast<std::uint32_t>(rtl_.capacity() - rtl_.occupancy()),
            0, 0});
        state_ = State::kInsertMode;
        break;
      default:
        // RESET MATCHING is not wired into the stage-level model (the
        // transaction-level Alpu carries the extension); discard, as
        // with any other invalid command here.
        ++stats_.commands_discarded;
        break;
    }
    return;
  }

  ALPU_ASSERT(state_ == State::kInsertMode,
              "insert-mode decode outside insert mode (Figure 3)");
  switch (cmd.kind) {
    case CommandKind::kStopInsert:
      state_ = State::kMatch;
      retry_pending_ = false;
      break;
    case CommandKind::kStartInsert:
      emit(Response{
          ResponseKind::kStartAck, 0,
          static_cast<std::uint32_t>(rtl_.capacity() - rtl_.occupancy()),
          0, 0});
      break;
    default:
      ++stats_.commands_discarded;
      break;
  }
}

}  // namespace alpu::hw
