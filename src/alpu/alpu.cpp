#include "alpu/alpu.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace alpu::hw {

Alpu::Alpu(sim::Engine& engine, std::string name, const AlpuConfig& config)
    : sim::Component(engine, std::move(name)),
      config_(config),
      array_(config.flavor, config.total_cells, config.block_size,
             config.significant_mask),
      clock_(engine, config.clock, [this] { return tick(); }),
      scrub_clock_(engine,
                   common::ClockPeriod(config.seu.scrub_interval_ps > 0
                                           ? config.seu.scrub_interval_ps
                                           : 1),
                   [this] { return scrub_tick(); }),
      header_fifo_(config.header_fifo_depth),
      command_fifo_(config.command_fifo_depth),
      result_fifo_(config.result_fifo_depth) {
  if (config_.seu.any()) {
    array_.install_fault_model(config_.seu, config_.seu.seed);
    if (config_.seu.scrub_interval_ps > 0) {
      scrub_enabled_ = true;
      scrub_clock_.wake();
    }
  }
}

bool Alpu::push_probe(const Probe& probe) {
  if (!header_fifo_.try_push(probe)) return false;
  clock_.wake();
  if (scrub_enabled_) {
    ++ops_since_scrub_;
    scrub_clock_.wake();
  }
  return true;
}

bool Alpu::push_command(const Command& cmd) {
  if (!command_fifo_.try_push(cmd)) return false;
  clock_.wake();
  if (scrub_enabled_) {
    ++ops_since_scrub_;
    scrub_clock_.wake();
  }
  return true;
}

std::optional<Response> Alpu::pop_result() {
  auto r = result_fifo_.try_pop();
  // Draining the result FIFO may unblock a stalled match.
  if (r.has_value()) clock_.wake();
  return r;
}

const Response* Alpu::peek_result() const {
  return result_fifo_.empty() ? nullptr : &result_fifo_.front();
}

void Alpu::emit(const Response& r) {
  Response stamped = r;
  stamped.issued_at = engine().now();
  result_fifo_.push(stamped);  // space guaranteed by start conditions
}

bool Alpu::scrub_tick() {
  array_.seu_advance(engine().now());
  const bool was_quarantined = array_.quarantined();
  const bool quarantined = array_.scrub();
  if (!was_quarantined && quarantined && on_fault_) on_fault_();
  if (ops_since_scrub_ == 0) {
    if (++idle_scrubs_ >= config_.seu.scrub_idle_limit) {
      // Park until the next probe/command wakes us — a dormant unit
      // must not keep the event heap alive forever.
      idle_scrubs_ = 0;
      return false;
    }
  } else {
    idle_scrubs_ = 0;
  }
  ops_since_scrub_ = 0;
  return true;
}

bool Alpu::tick() {
  // Catch the SEU injector up before any work this edge does: flips
  // land at deterministic tick boundaries regardless of sharding.
  array_.seu_advance(engine().now());
  if (busy_cycles_ > 0) {
    ++stats_.busy_cycles;
    --busy_cycles_;
    if (busy_cycles_ > 0) return true;
    complete_op();
    // A completion may itself chain a follow-up operation (decode of
    // RESET MATCHING starts its sweep); only look for new work if not.
    if (busy_cycles_ > 0) return true;
    // Back-to-back issue: the next operation starts on the same edge the
    // previous one completes, so an op stream sustains exactly one op
    // per `latency` cycles (matches every other cycle for inserts,
    // Section V-D).
    return start_next_op() || true;
  }
  return start_next_op();
}

bool Alpu::start_next_op() {
  switch (state_) {
    case State::kMatch: {
      // The held probe (a retry forced out of insert mode) is the oldest
      // outstanding header: it must be answered before anything else so
      // that responses stay in probe order (Section IV-D relies on it).
      if (held_probe_.has_value() && !result_fifo_.full()) {
        current_probe_ = *held_probe_;
        ++stats_.held_retries;
        op_ = Op::kMatchProbe;
        busy_cycles_ = config_.match_latency_cycles;
        return true;
      }
      if (!command_fifo_.empty() && !result_fifo_.full()) {
        state_ = State::kReadCommand;
        op_ = Op::kDecode;
        busy_cycles_ = config_.command_decode_cycles;
        return true;
      }
      if (!header_fifo_.empty() && !result_fifo_.full()) {
        current_probe_ = header_fifo_.pop();
        ++stats_.probes_accepted;
        op_ = Op::kMatchProbe;
        busy_cycles_ = config_.match_latency_cycles;
        return true;
      }
      return false;
    }
    case State::kReadCommand: {
      // Footnote 3: an empty command FIFO before a valid command causes a
      // transition back to the match state.
      if (command_fifo_.empty()) {
        state_ = State::kMatch;
        return start_next_op();
      }
      if (result_fifo_.full()) return false;  // START ACK needs a slot
      op_ = Op::kDecode;
      busy_cycles_ = config_.command_decode_cycles;
      return true;
    }
    case State::kInsertMode: {
      if (!command_fifo_.empty()) {
        if (command_fifo_.front().kind == CommandKind::kInsert) {
          current_command_ = command_fifo_.pop();
          op_ = Op::kInsert;
          busy_cycles_ = config_.insert_interval_cycles;
          return true;
        }
        op_ = Op::kDecode;
        busy_cycles_ = config_.command_decode_cycles;
        return true;
      }
      if (retry_pending_ && held_probe_.has_value() && !result_fifo_.full()) {
        current_probe_ = *held_probe_;
        retry_pending_ = false;
        ++stats_.held_retries;
        op_ = Op::kMatchProbe;
        busy_cycles_ = config_.match_latency_cycles;
        return true;
      }
      if (held_probe_.has_value()) {
        // A failed match is held: matching pauses until the next insert
        // gives it a chance, or STOP INSERT releases it.
        return false;
      }
      if (!header_fifo_.empty() && !result_fifo_.full()) {
        current_probe_ = header_fifo_.pop();
        ++stats_.probes_accepted;
        op_ = Op::kMatchProbe;
        busy_cycles_ = config_.match_latency_cycles;
        return true;
      }
      return false;
    }
  }
  return false;
}

void Alpu::complete_op() {
  const Op op = op_;
  op_ = Op::kNone;
  switch (op) {
    case Op::kDecode:
      complete_decode();
      break;
    case Op::kMatchProbe:
      complete_match();
      break;
    case Op::kInsert: {
      const bool ok = array_.insert(current_command_.bits,
                                    current_command_.mask,
                                    current_command_.cookie);
      if (ok) {
        ++stats_.inserts;
      } else {
        // Protocol violation: the processor inserted past the count it
        // was granted in START ACKNOWLEDGE.  Hardware has nowhere to put
        // the entry; record and drop.  Drivers that never overrun their
        // grant opt into trapping this (see AlpuConfig) — for them a
        // silent drop here is lost data, not a modelled condition.
        ALPU_DEBUG_ASSERT(!config_.assert_on_insert_drop,
                          "insert dropped by a full ALPU (grant overrun)");
        ++stats_.inserts_dropped;
      }
      // Every insert gives a held (previously failing) probe new
      // entries to match against.
      if (held_probe_.has_value()) retry_pending_ = true;
      break;
    }
    case Op::kFlush: {
      ++stats_.flushes;
      stats_.flushed_entries +=
          array_.invalidate_matching(Probe{current_command_.bits,
                                           current_command_.mask, 0});
      break;
    }
    case Op::kNone:
      ALPU_CHECK_FAIL("completed a non-existent operation");
      break;
  }
}

void Alpu::complete_decode() {
  if (command_fifo_.empty()) {
    // The command vanished?  Cannot happen: commands are only consumed by
    // decode/insert ops.
    ALPU_CHECK_FAIL("decode with empty command FIFO");
    state_ = State::kMatch;
    return;
  }
  const Command cmd = command_fifo_.pop();
  if (state_ == State::kReadCommand) {
    switch (cmd.kind) {
      case CommandKind::kReset:
        array_.reset();
        ++stats_.resets;
        if (held_probe_.has_value()) {
          // The held header can never match a cleared array; answer it so
          // the processor still gets one response per header.
          emit(Response{ResponseKind::kMatchFailure, 0, 0,
                        held_probe_->seq, 0});
          ++stats_.match_failures;
          held_probe_.reset();
          retry_pending_ = false;
        }
        state_ = State::kMatch;
        break;
      case CommandKind::kStartInsert:
        emit(Response{ResponseKind::kStartAck, 0,
                      static_cast<std::uint32_t>(array_.free_slots()), 0, 0});
        state_ = State::kInsertMode;
        break;
      case CommandKind::kResetMatching:
        // Multi-process extension: valid in the same state as RESET.
        // The sweep broadcasts the selector and deletes per block; it
        // occupies the unit one cycle per cell block.
        ALPU_ASSERT(!held_probe_.has_value(),
                    "held probes are retired before commands are read");
        current_command_ = cmd;
        op_ = Op::kFlush;
        busy_cycles_ = static_cast<unsigned>(
            std::max<std::size_t>(1, array_.capacity() / array_.block_size()));
        state_ = State::kMatch;
        return;  // flush op now occupies the pipeline
      default:
        // Section III-C: other commands are discarded in Read Command.
        ++stats_.commands_discarded;
        break;  // stay in kReadCommand; next tick decodes the next command
    }
    return;
  }

  ALPU_ASSERT(state_ == State::kInsertMode,
              "insert-mode decode outside insert mode (Figure 3)");
  switch (cmd.kind) {
    case CommandKind::kStopInsert:
      state_ = State::kMatch;
      // Any held probe is re-matched in Match state (priority path) and
      // its result — success or, now legal again, failure — is emitted.
      retry_pending_ = false;
      break;
    case CommandKind::kStartInsert:
      // Redundant; already in insert mode.  Re-acknowledge so a processor
      // that lost the first ack is not deadlocked.
      emit(Response{ResponseKind::kStartAck, 0,
                    static_cast<std::uint32_t>(array_.free_slots()), 0, 0});
      break;
    default:
      ++stats_.commands_discarded;
      break;
  }
}

void Alpu::complete_match() {
  const bool was_held = held_probe_.has_value() &&
                        held_probe_->seq == current_probe_.seq;
  ArrayMatch m{};
  if (!array_.quarantined()) m = array_.match_and_delete(current_probe_);
  if (array_.quarantined()) {
    // Parity fault (just detected by this probe's verify, or latched
    // earlier): the array's answer is untrustworthy, so report the
    // fault instead.  PARITY FAULT is reportable even in insert mode —
    // it is an error condition, not a match failure, and the processor
    // must abort the session and rebuild.  Carrying the seq preserves
    // the one-response-per-header pairing (Section IV-D).
    emit(Response{ResponseKind::kParityFault, 0, 0, current_probe_.seq, 0});
    ++stats_.parity_fault_responses;
    if (was_held) {
      held_probe_.reset();
      retry_pending_ = false;
    }
    return;
  }
  if (m.hit) {
    emit(Response{ResponseKind::kMatchSuccess, m.cookie, 0,
                  current_probe_.seq, 0});
    ++stats_.match_successes;
    if (was_held) {
      held_probe_.reset();
      retry_pending_ = false;
    }
    return;
  }
  if (state_ == State::kInsertMode) {
    // Failure is not reportable during insert mode; hold for retry.
    held_probe_ = current_probe_;
    return;
  }
  emit(Response{ResponseKind::kMatchFailure, 0, 0, current_probe_.seq, 0});
  ++stats_.match_failures;
  if (was_held) {
    held_probe_.reset();
    retry_pending_ = false;
  }
}

}  // namespace alpu::hw
