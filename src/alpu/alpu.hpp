// Cycle-level model of the Associative List Processing Unit (Section III).
//
// The unit couples the functional match array (AlpuArray) with the
// paper's timing and protocol behaviour:
//
//   * three hardware FIFOs decouple it from the NIC processor — header
//     (probes in), command (processor requests in), result (responses
//     out) — exactly the dashed-line additions of Figure 1;
//   * the governing state machine of Figure 3: Match -> Read Command ->
//     (Insert mode) -> Match, with the command legality rules of
//     Section III-C (only RESET / START INSERT honoured from Read
//     Command; everything else discarded);
//   * pipeline timing from Section V-D: a new match every
//     `match_latency_cycles` (6-7, no execution overlap), inserts every
//     other cycle, results timestamped at completion;
//   * insert-mode safety: matching continues between inserts, successful
//     matches are reported, but a FAILED match is *held for retry* until
//     inserts finish — so MATCH FAILURE can never be observed between
//     START ACKNOWLEDGE and STOP INSERT, closing the race on in-flight
//     headers that would otherwise miss entries being inserted.
//
// The model sleeps (stops consuming engine events) whenever it has no
// work, and producers wake it — cycle accuracy without per-cycle cost.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "alpu/array.hpp"
#include "alpu/device.hpp"
#include "alpu/types.hpp"
#include "common/fifo.hpp"
#include "sim/clock.hpp"
#include "sim/engine.hpp"

namespace alpu::hw {

struct AlpuConfig {
  AlpuFlavor flavor = AlpuFlavor::kPostedReceive;
  std::size_t total_cells = 256;
  std::size_t block_size = 16;

  /// ALPU clock.  The simulation results assume ASIC speed (~500 MHz,
  /// Section VI-A); the FPGA prototype runs ~100-112 MHz.
  common::ClockPeriod clock = common::ClockPeriod::from_mhz(500);

  /// Cycles from accepting a probe to its result (Section V-D assumes 7,
  /// with no overlap between successive matches).
  unsigned match_latency_cycles = 7;
  /// One insert may start every other cycle.
  unsigned insert_interval_cycles = 2;
  /// Cycles to pop and decode one command.
  unsigned command_decode_cycles = 1;

  /// Comparator wiring (42-bit MPI packing by default; include PID bits
  /// for the multi-process extension, or ~0 for full-width Portals).
  MatchWord significant_mask = match::kFullMask;

  std::size_t header_fifo_depth = 64;
  std::size_t command_fifo_depth = 64;
  std::size_t result_fifo_depth = 64;

  /// An INSERT past capacity is a software protocol violation: the unit
  /// records it in `inserts_dropped` and drops the entry silently, which
  /// is correct for the hardware but turns a driver bug into data loss.
  /// Drivers that only insert against granted credit (the NIC firmware)
  /// set this to trap the drop in checked builds; conformance tests and
  /// the model checker, which exercise the violation deliberately, leave
  /// it off and observe the counter.
  bool assert_on_insert_drop = false;

  /// Transient-fault model (SEU injection + parity + scrub).  The
  /// default (`seu.any() == false`) installs nothing and leaves every
  /// path byte-identical to the fault-free unit.
  SeuConfig seu;
};

struct AlpuStats {
  std::uint64_t probes_accepted = 0;
  std::uint64_t match_successes = 0;
  std::uint64_t match_failures = 0;
  std::uint64_t held_retries = 0;      ///< failed matches retried in insert mode
  std::uint64_t inserts = 0;
  std::uint64_t inserts_dropped = 0;   ///< protocol violation: insert when full
  std::uint64_t commands_discarded = 0;
  std::uint64_t resets = 0;
  std::uint64_t flushes = 0;           ///< RESET MATCHING sweeps
  std::uint64_t flushed_entries = 0;   ///< cells removed by those sweeps
  std::uint64_t busy_cycles = 0;
  /// Probes answered PARITY FAULT while the array was quarantined.
  std::uint64_t parity_fault_responses = 0;
};

/// The ALPU as a simulation component (transaction-level model).
class Alpu : public sim::Component, public AlpuDevice {
 public:
  Alpu(sim::Engine& engine, std::string name, const AlpuConfig& config);

  // ---- NIC-facing FIFO interface (flow-controlled) ----

  /// Deliver a probe on the header FIFO.  False == FIFO full (producer
  /// must apply back-pressure).
  [[nodiscard]] bool push_probe(const Probe& probe) override;

  /// Deliver a command on the command FIFO.
  [[nodiscard]] bool push_command(const Command& cmd) override;

  /// Take the oldest response, if any.
  std::optional<Response> pop_result() override;

  const Response* peek_result() const;
  bool result_available() const override { return !result_fifo_.empty(); }
  std::size_t header_fifo_free() const { return header_fifo_.free_slots(); }
  std::size_t command_fifo_free() const { return command_fifo_.free_slots(); }

  // ---- introspection ----

  const AlpuConfig& config() const { return config_; }
  const AlpuArray& array() const { return array_; }
  const AlpuStats& stats() const { return stats_; }
  std::size_t capacity() const override { return array_.capacity(); }
  std::size_t occupancy() const override { return array_.occupancy(); }

  /// Externally visible mode (for tests): true while in insert mode.
  bool in_insert_mode() const { return state_ == State::kInsertMode; }

  // ---- transient-fault model ----

  /// True while the array is quarantined by a latched parity fault.
  bool fault_pending() const override { return array_.quarantined(); }
  SeuStats seu_stats() const override { return array_.seu_stats(); }
  /// Invoked when a background scrub (not a probe) latches a fault, so
  /// the NIC firmware learns about dormant corruption without traffic.
  // lint: ok(std-function-hot-path) — installed once at NIC setup;
  // fires once per fault episode, never on the probe path.
  void set_fault_callback(std::function<void()> cb) override {
    on_fault_ = std::move(cb);
  }
  /// Direct corruption for the checker's kCorrupt op and the fuzzers
  /// (see AlpuArray::corrupt_for_test).
  void corrupt_for_test(unsigned plane, std::size_t cell, unsigned bit) {
    array_.corrupt_for_test(plane, cell, bit);
  }

 private:
  enum class State : std::uint8_t {
    kMatch,        ///< normal matching (Figure 3 "Match")
    kReadCommand,  ///< popped out of matching to decode a command
    kInsertMode,   ///< between START INSERT and STOP INSERT
  };

  /// Micro-operation occupying the (non-overlapped) pipeline.
  enum class Op : std::uint8_t {
    kNone,
    kDecode,
    kMatchProbe,
    kInsert,
    kFlush,  ///< RESET MATCHING sweep (multi-process extension)
  };

  bool tick();
  bool start_next_op();
  void complete_op();
  void complete_decode();
  void complete_match();
  void emit(const Response& r);
  bool scrub_tick();

  AlpuConfig config_;
  AlpuArray array_;
  sim::Clock clock_;
  /// Background parity scrub (constructed always, woken only when
  /// enabled).  Parks after `scrub_idle_limit` sweeps with no unit
  /// activity so an idle unit lets the event heap drain.
  sim::Clock scrub_clock_;
  bool scrub_enabled_ = false;
  unsigned idle_scrubs_ = 0;
  std::uint64_t ops_since_scrub_ = 0;
  std::function<void()> on_fault_;  // lint: ok(std-function-hot-path) — fires once per fault episode

  common::BoundedFifo<Probe> header_fifo_;
  common::BoundedFifo<Command> command_fifo_;
  common::BoundedFifo<Response> result_fifo_;

  State state_ = State::kMatch;
  Op op_ = Op::kNone;
  unsigned busy_cycles_ = 0;

  Probe current_probe_{};
  Command current_command_{};
  std::optional<Probe> held_probe_;  ///< failed match held during insert mode
  bool retry_pending_ = false;  ///< held probe should re-match (post-insert)

  AlpuStats stats_;
};

}  // namespace alpu::hw
