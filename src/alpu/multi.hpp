// Multi-process ALPU support (footnote 1).
//
// "The prototype design only supports hardware acceleration for a
// single process, but extending it to support a limited number of
// processes is straightforward."  The straightforward extension: widen
// the match word with a process id (PID) field that is always compared
// exactly — entries belonging to one process can then never answer a
// probe from another — and add a RESET MATCHING command that tears down
// one process's entries (process exit) without disturbing the rest.
//
// The PID occupies bits [42, 42+kPidBits) of the 64-bit match word,
// directly above the MPI packing; the comparators are widened by
// setting the unit's `significant_mask` accordingly (which the FPGA
// area model prices via its `match_width` parameter).
#pragma once

#include <cstdint>

#include "alpu/alpu.hpp"
#include "common/check.hpp"

namespace alpu::hw {

/// Process id bits carried above the 42-bit MPI packing.
inline constexpr int kPidBits = 6;  ///< up to 64 co-resident processes
inline constexpr int kPidShift = match::kMatchBits;
inline constexpr std::uint32_t kMaxPid = (1u << kPidBits) - 1;
inline constexpr MatchWord kPidMask = MatchWord{kMaxPid} << kPidShift;

/// The comparator wiring for a PID-qualified unit.
inline constexpr MatchWord kPidSignificantMask =
    match::kFullMask | kPidMask;

/// Stamp a PID into a match word (entry or probe).
inline MatchWord with_pid(MatchWord word, std::uint32_t pid) {
  ALPU_ASSERT(pid <= kMaxPid, "PID exceeds the widened comparator field");
  return (word & ~kPidMask) | (MatchWord{pid} << kPidShift);
}

/// Extract the PID from a stamped word.
inline std::uint32_t pid_of(MatchWord word) {
  return static_cast<std::uint32_t>((word >> kPidShift) & kMaxPid);
}

/// Build a unit configuration with PID-qualified comparators.
inline AlpuConfig make_multi_process_config(AlpuConfig base) {
  base.significant_mask = kPidSignificantMask;
  return base;
}

/// Facade wrapping an Alpu with per-process operations.
///
/// The firmware-visible protocol is unchanged (Table I/II); this class
/// only centralises the PID stamping and the bookkeeping a multi-process
/// firmware would keep (entries resident per process).
class MultiProcessAlpu {
 public:
  MultiProcessAlpu(sim::Engine& engine, std::string name, AlpuConfig base)
      : unit_(engine, std::move(name), make_multi_process_config(base)) {}

  Alpu& unit() { return unit_; }
  const Alpu& unit() const { return unit_; }

  /// Probe on behalf of `pid`.  The PID field participates in the
  /// comparison, so only that process's entries can answer.
  [[nodiscard]] bool push_probe(std::uint32_t pid, Probe probe) {
    probe.bits = with_pid(probe.bits, pid);
    // The PID must never be wildcarded, whatever the caller's mask.
    probe.mask &= ~kPidMask;
    return unit_.push_probe(probe);
  }

  /// Insert command for `pid` (send between START/STOP INSERT).
  [[nodiscard]] bool push_insert(std::uint32_t pid, MatchWord bits,
                                 MatchWord mask, Cookie cookie) {
    Command cmd;
    cmd.kind = CommandKind::kInsert;
    cmd.bits = with_pid(bits, pid);
    cmd.mask = mask & ~kPidMask;
    cmd.cookie = cookie;
    if (!unit_.push_command(cmd)) return false;
    ++resident_[pid];
    return true;
  }

  [[nodiscard]] bool push_command(const Command& cmd) {
    return unit_.push_command(cmd);
  }

  /// Tear down every entry belonging to `pid` (process exit): the
  /// RESET MATCHING extension with a PID-exact, everything-else-wild
  /// selector.
  [[nodiscard]] bool flush_process(std::uint32_t pid) {
    Command cmd;
    cmd.kind = CommandKind::kResetMatching;
    cmd.bits = with_pid(0, pid);
    cmd.mask = ~kPidMask;  // only the PID field must match
    if (!unit_.push_command(cmd)) return false;
    resident_[pid] = 0;
    return true;
  }

  std::optional<Response> pop_result() { return unit_.pop_result(); }

  /// Firmware-side view of entries inserted for `pid` (not decremented
  /// on matches; callers reconcile via their own lists, as with the
  /// single-process synced counters).
  std::uint64_t inserted_for(std::uint32_t pid) const {
    const auto it = resident_.find(pid);
    return it == resident_.end() ? 0 : it->second;
  }

 private:
  Alpu unit_;
  std::unordered_map<std::uint32_t, std::uint64_t> resident_;
};

}  // namespace alpu::hw
