// Wire-level types of the ALPU's processor interface (Tables I and II).
#pragma once

#include <cstdint>

#include "common/time.hpp"
#include "match/match.hpp"

namespace alpu::hw {

using match::Cookie;
using match::MatchWord;
using match::Pattern;

/// Which queue this ALPU accelerates.  The two flavours differ only in
/// where the mask bits live (Figure 2a vs 2b): the posted-receive unit
/// stores a mask per cell and matches explicit incoming headers; the
/// unexpected-message unit stores explicit headers and takes the mask as
/// an input with each probe (the "reverse lookup").
enum class AlpuFlavor {
  kPostedReceive,
  kUnexpected,
};

/// A probe delivered on the header FIFO.
///
/// For the posted-receive flavour this is an incoming message header
/// (mask ignored, must be zero).  For the unexpected flavour it is a
/// receive being posted: explicit bits plus wildcard mask.
struct Probe {
  MatchWord bits = 0;
  MatchWord mask = 0;
  /// Sequence number assigned by the producer; lets the processor pair
  /// each result with its copy of the header data (Section IV-D).
  std::uint64_t seq = 0;
};

/// Commands accepted on the command FIFO (Table I, plus the
/// multi-process extension of footnote 1).
enum class CommandKind : std::uint8_t {
  kStartInsert,  ///< enter insert mode; answered by START ACKNOWLEDGE
  kInsert,       ///< insert {match bits, optional mask bits, tag}
  kStopInsert,   ///< leave insert mode
  kReset,        ///< clear all valid flags
  /// EXTENSION (footnote 1): invalidate every cell matching
  /// {bits, mask} — used to tear down one process's entries without
  /// disturbing the others.  Valid in the same state as RESET.
  kResetMatching,
};

struct Command {
  CommandKind kind = CommandKind::kReset;
  MatchWord bits = 0;    ///< INSERT / RESET MATCHING
  MatchWord mask = 0;    ///< INSERT (posted flavour) / RESET MATCHING
  Cookie cookie = 0;     ///< INSERT only ("tag" in the paper)
};

/// Responses produced on the result FIFO (Table II, plus the
/// transient-fault extension).
enum class ResponseKind : std::uint8_t {
  kStartAck,      ///< insert mode entered; carries free-entry count
  kMatchSuccess,  ///< probe matched; carries the stored tag (cookie)
  kMatchFailure,  ///< probe matched nothing
  /// EXTENSION (fault model): a parity check over the cell planes
  /// failed.  The unit is quarantined — every probe is answered with
  /// this kind (carrying its seq, so the one-response-per-header
  /// pairing survives) until the processor issues RESET and rebuilds
  /// the array from its authoritative shadow lists.
  kParityFault,
};

struct Response {
  ResponseKind kind = ResponseKind::kMatchFailure;
  Cookie cookie = 0;          ///< MATCH SUCCESS only
  std::uint32_t free_slots = 0;  ///< START ACKNOWLEDGE only
  std::uint64_t probe_seq = 0;   ///< seq of the probe this answers (matches)
  common::TimePs issued_at = 0;  ///< simulation time the response was queued
};

}  // namespace alpu::hw
