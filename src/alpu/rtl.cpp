#include "alpu/rtl.hpp"

#include "common/check.hpp"

namespace alpu::hw {

namespace {
bool is_pow2(std::size_t x) { return x != 0 && (x & (x - 1)) == 0; }
}  // namespace

RtlAlpu::RtlAlpu(AlpuFlavor flavor, std::size_t total_cells,
                 std::size_t block_size, MatchWord significant_mask)
    : flavor_(flavor),
      block_size_(block_size),
      significant_mask_(significant_mask),
      cells_(total_cells) {
  ALPU_ASSERT(total_cells > 0, "match array must have at least one cell");
  ALPU_ASSERT(is_pow2(block_size), "block size must be a power of 2 (III-B)");
  ALPU_ASSERT(total_cells % block_size == 0,
              "cell count must be a whole number of blocks");
}

std::size_t RtlAlpu::occupancy() const {
  std::size_t n = 0;
  for (const Cell& c : cells_) n += c.valid ? 1 : 0;
  return n;
}

bool RtlAlpu::cell_matches(const Cell& cell, const Probe& probe) const {
  if (!cell.valid) return false;
  const MatchWord dont_care =
      flavor_ == AlpuFlavor::kPostedReceive ? cell.mask : probe.mask;
  return ((cell.bits ^ probe.bits) & ~dont_care & significant_mask_) == 0;
}

ArrayMatch RtlAlpu::match(const Probe& probe) const {
  // Highest index = furthest right = oldest = highest priority.
  for (std::size_t i = cells_.size(); i-- > 0;) {
    if (cell_matches(cells_[i], probe)) {
      return ArrayMatch{true, i, cells_[i].cookie};
    }
  }
  return ArrayMatch{};
}

bool RtlAlpu::can_shift_right(std::size_t i,
                              const std::vector<Cell>& snapshot) const {
  if (i + 1 >= snapshot.size()) return false;  // top of the whole array
  const std::size_t block_top =
      (i / block_size_) * block_size_ + block_size_ - 1;
  // "Space available": a higher cell in the current block is empty...
  for (std::size_t j = i + 1; j <= block_top; ++j) {
    if (!snapshot[j].valid) return true;
  }
  // ...or the lowest cell of the next block is empty.
  return block_top + 1 < snapshot.size() && !snapshot[block_top + 1].valid;
}

bool RtlAlpu::step(const std::optional<Cell>& insert,
                   const std::optional<std::size_t>& delete_location) {
  ALPU_ASSERT(!(insert.has_value() && delete_location.has_value()),
              "matches are stopped while an insert occupies the datapath");
  const std::vector<Cell> snapshot = cells_;

  if (delete_location.has_value()) {
    const std::size_t d = *delete_location;
    ALPU_ASSERT(d < cells_.size() && snapshot[d].valid,
                "delete location must name a valid cell");
    // Cells at and below the match location shift upward; above, hold.
    for (std::size_t i = d + 1; i < cells_.size(); ++i) cells_[i] = snapshot[i];
    for (std::size_t i = 0; i < d; ++i) cells_[i + 1] = snapshot[i];
    cells_[0] = Cell{};
    return true;
  }

  // Compaction movement: every enabled cell shifts one slot rightward,
  // simultaneously (the enable rule guarantees no collisions).
  std::vector<Cell> next(cells_.size());
  for (std::size_t i = 0; i < snapshot.size(); ++i) {
    if (!snapshot[i].valid) continue;
    const std::size_t dest = can_shift_right(i, snapshot) ? i + 1 : i;
    ALPU_ASSERT(!next[dest].valid, "compaction collision");
    next[dest] = snapshot[i];
  }
  cells_ = std::move(next);

  if (insert.has_value()) {
    if (cells_[0].valid) return false;  // control-logic violation
    cells_[0] = *insert;
    cells_[0].valid = true;
  }
  return true;
}

std::size_t RtlAlpu::holes() const {
  // A hole is an empty slot strictly BETWEEN valid cells: empty space at
  // the young end (below every entry) is just headroom, not a hole.
  std::size_t lowest = cells_.size(), highest = 0;
  bool any = false;
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    if (cells_[i].valid) {
      lowest = std::min(lowest, i);
      highest = std::max(highest, i);
      any = true;
    }
  }
  if (!any) return 0;
  std::size_t holes = 0;
  for (std::size_t i = lowest + 1; i < highest; ++i) {
    if (!cells_[i].valid) ++holes;
  }
  return holes;
}

bool RtlAlpu::quiescent() const {
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    if (cells_[i].valid && can_shift_right(i, cells_)) return false;
  }
  return true;
}

void RtlAlpu::reset() {
  for (Cell& c : cells_) c = Cell{};
}

}  // namespace alpu::hw
