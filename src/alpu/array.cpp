#include "alpu/array.hpp"

#include <bit>
#include <cstring>

#include "common/check.hpp"

#if defined(__x86_64__) && defined(__GNUC__)
#define ALPU_X86_DISPATCH 1
#include <immintrin.h>
#endif

namespace alpu::hw {

namespace testing {
bool inject_compaction_off_by_one = false;
std::atomic<bool> inject_silent_flip{false};
}  // namespace testing

namespace {

bool is_pow2(std::size_t x) { return x != 0 && (x & (x - 1)) == 0; }

std::size_t pow2_ceil(std::size_t x) {
  return std::size_t{1} << std::bit_width(x - 1);
}

// ---- word-parallel compare kernels ----------------------------------------
//
// Each kernel evaluates one 64-cell word of the bit planes against a
// probe and returns the hit bitmask (bit j set == cell base+j matches,
// before the validity AND).  Two shapes:
//   * "posted": every cell carries its own don't-care mask,
//   * "uniform": one probe-supplied care mask for all cells (the
//     unexpected flavour's reverse lookup, and RESET PROCESS sweeps).
//
// The portable loop is branch-free per cell so any vectorizing build
// can fold it; on x86-64 a runtime-dispatched AVX2 version (compiled
// via the `target` attribute, so no special build flags are needed)
// compares four cells per step and gathers the hit bits with movemask.

std::uint64_t hit_word_posted_scalar(const MatchWord* b, const MatchWord* m,
                                     MatchWord pb, MatchWord sig) {
  std::uint64_t hits = 0;
  for (unsigned j = 0; j < 64; ++j) {
    hits |= static_cast<std::uint64_t>(((b[j] ^ pb) & ~m[j] & sig) == 0) << j;
  }
  return hits;
}

std::uint64_t hit_word_uniform_scalar(const MatchWord* b, MatchWord pb,
                                      MatchWord care) {
  std::uint64_t hits = 0;
  for (unsigned j = 0; j < 64; ++j) {
    hits |= static_cast<std::uint64_t>(((b[j] ^ pb) & care) == 0) << j;
  }
  return hits;
}

#ifdef ALPU_X86_DISPATCH

[[gnu::target("avx2")]] std::uint64_t hit_word_posted_avx2(
    const MatchWord* b, const MatchWord* m, MatchWord pb, MatchWord sig) {
  const __m256i vpb = _mm256_set1_epi64x(static_cast<long long>(pb));
  const __m256i vsig = _mm256_set1_epi64x(static_cast<long long>(sig));
  const __m256i zero = _mm256_setzero_si256();
  std::uint64_t hits = 0;
  for (unsigned j = 0; j < 64; j += 4) {
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + j));
    const __m256i vm =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(m + j));
    const __m256i mism = _mm256_and_si256(
        _mm256_andnot_si256(vm, _mm256_xor_si256(vb, vpb)), vsig);
    const __m256i eq = _mm256_cmpeq_epi64(mism, zero);
    hits |= static_cast<std::uint64_t>(static_cast<unsigned>(
                _mm256_movemask_pd(_mm256_castsi256_pd(eq))))
            << j;
  }
  return hits;
}

[[gnu::target("avx2")]] std::uint64_t hit_word_uniform_avx2(
    const MatchWord* b, MatchWord pb, MatchWord care) {
  const __m256i vpb = _mm256_set1_epi64x(static_cast<long long>(pb));
  const __m256i vcare = _mm256_set1_epi64x(static_cast<long long>(care));
  const __m256i zero = _mm256_setzero_si256();
  std::uint64_t hits = 0;
  for (unsigned j = 0; j < 64; j += 4) {
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + j));
    const __m256i mism =
        _mm256_and_si256(_mm256_xor_si256(vb, vpb), vcare);
    const __m256i eq = _mm256_cmpeq_epi64(mism, zero);
    hits |= static_cast<std::uint64_t>(static_cast<unsigned>(
                _mm256_movemask_pd(_mm256_castsi256_pd(eq))))
            << j;
  }
  return hits;
}

// Resolved once at namespace-scope dynamic init (single-threaded,
// before any probe runs), so the per-word dispatch is one predictable
// branch.
const bool kHaveAvx2 = __builtin_cpu_supports("avx2") != 0;

#endif  // ALPU_X86_DISPATCH

std::uint64_t hit_word_posted(const MatchWord* b, const MatchWord* m,
                              MatchWord pb, MatchWord sig) {
#ifdef ALPU_X86_DISPATCH
  if (kHaveAvx2) return hit_word_posted_avx2(b, m, pb, sig);
#endif
  return hit_word_posted_scalar(b, m, pb, sig);
}

std::uint64_t hit_word_uniform(const MatchWord* b, MatchWord pb,
                               MatchWord care) {
#ifdef ALPU_X86_DISPATCH
  if (kHaveAvx2) return hit_word_uniform_avx2(b, pb, care);
#endif
  return hit_word_uniform_scalar(b, pb, care);
}

}  // namespace

AlpuArray::AlpuArray(AlpuFlavor flavor, std::size_t total_cells,
                     std::size_t block_size, MatchWord significant_mask)
    : flavor_(flavor),
      total_cells_(total_cells),
      block_size_(block_size),
      significant_mask_(significant_mask) {
  ALPU_ASSERT(total_cells > 0, "match array must have at least one cell");
  ALPU_ASSERT(is_pow2(block_size), "block size must be a power of 2 (III-B)");
  ALPU_ASSERT(total_cells % block_size == 0,
              "cell count must be a whole number of blocks");
  ALPU_ASSERT(significant_mask != 0, "comparators need at least one wired bit");
  // Pad every plane to a whole number of 64-cell words: the match loop
  // reads full words, and the validity bitmap masks the tail.
  const std::size_t padded = (total_cells + 63) & ~std::size_t{63};
  bits_.assign(padded, 0);
  mask_.assign(padded, 0);
  cookie_.assign(padded, 0);
  valid_.assign(padded / 64, 0);
  const std::size_t padded_blocks = pow2_ceil(total_cells / block_size);
  tree_scratch_.assign(block_size + padded_blocks, Candidate{});
  select_scratch_.assign(padded / 64, 0);
}

bool AlpuArray::cell_matches(std::size_t i, const Probe& probe) const {
  if (!valid_bit(i)) return false;  // invalid data cannot produce a match
  const MatchWord dont_care =
      flavor_ == AlpuFlavor::kPostedReceive ? mask_[i] : probe.mask;
  return ((bits_[i] ^ probe.bits) & ~dont_care & significant_mask_) == 0;
}

bool AlpuArray::insert(MatchWord bits, MatchWord mask, Cookie cookie) {
  if (full()) return false;
  const std::size_t i = occupancy_++;
  bits_[i] = bits;
  mask_[i] = mask;
  cookie_[i] = cookie;
  valid_[i >> 6] |= std::uint64_t{1} << (i & 63);
  parity_update_cell(i);
  parity_update_valid_word(i >> 6);
  if (testing::inject_silent_flip.load(std::memory_order_relaxed) &&
      testing::inject_silent_flip.exchange(false)) {
    // Must-fail teeth: corrupt the oldest entry's source LSB behind the
    // parity layer's back.  See the declaration in array.hpp.
    bits_[0] ^= MatchWord{1} << match::kSourceShift;  // lint: ok(alpu-plane-write-outside-parity) — deliberate silent corruption
  }
  ALPU_INVARIANT(planes_consistent(), "insert broke the prefix invariant");
  return true;
}

std::size_t AlpuArray::find_oldest(const Probe& probe) const {
  // Stage 2 + priority network, word-parallel: each 64-cell word of the
  // bit planes yields one hit bitmask; the oldest match is countr_zero
  // of the first non-zero word.  The compare is branch-free per cell, so
  // the compiler can vectorize the stride-1 plane reads.
  const MatchWord pb = probe.bits;
  const MatchWord sig = significant_mask_;
  const std::size_t words = (occupancy_ + 63) >> 6;
  if (flavor_ == AlpuFlavor::kPostedReceive) {
    // Posted flavour: each cell stores its own don't-care mask (Fig 2a).
    for (std::size_t w = 0; w < words; ++w) {
      const std::size_t base = w << 6;
      const std::uint64_t hits =
          hit_word_posted(bits_.data() + base, mask_.data() + base, pb, sig) &
          valid_[w];
      counters_.cells_scanned +=
          total_cells_ - base < 64 ? total_cells_ - base : 64;
      if (hits != 0) {
        return base + static_cast<std::size_t>(std::countr_zero(hits));
      }
    }
    return kMiss;
  }
  // Unexpected flavour: the probe carries the mask (the reverse lookup,
  // Fig 2b) — one uniform don't-care for every cell.
  const MatchWord care = ~probe.mask & sig;
  for (std::size_t w = 0; w < words; ++w) {
    const std::size_t base = w << 6;
    const std::uint64_t hits =
        hit_word_uniform(bits_.data() + base, pb, care) & valid_[w];
    counters_.cells_scanned +=
        total_cells_ - base < 64 ? total_cells_ - base : 64;
    if (hits != 0) {
      return base + static_cast<std::size_t>(std::countr_zero(hits));
    }
  }
  return kMiss;
}

ArrayMatch AlpuArray::match(const Probe& probe) const {
  ++counters_.probes;
  // Detection point: every parity checker evaluates alongside the
  // comparators, so corruption anywhere in the planes surfaces before a
  // (possibly wrong) match result can be used.
  if (fault_ && !parity_ok()) return ArrayMatch{};
  const std::size_t i = find_oldest(probe);
  if (i == kMiss) return ArrayMatch{};
  return ArrayMatch{true, i, cookie_[i]};
}

ArrayMatch AlpuArray::match_tree(const Probe& probe) const {
  // Stage 2 of the pipeline: every cell produces (match AND valid).
  // Stages 3-4: pairwise priority muxes inside each block, then the same
  // reduction across block outputs.  "Priority" selects the older
  // (lower-index) candidate, mirroring the RTL where the highest-order
  // cell wins and entries age toward the high end.  All reduction
  // levels run in place in the per-instance scratch — no allocation.
  ++counters_.probes;
  counters_.cells_scanned += total_cells_;  // every comparator evaluates
  if (fault_ && !parity_ok()) return ArrayMatch{};

  const auto pick = [](const Candidate& older, const Candidate& younger) {
    if (older.hit) return older;
    if (younger.hit) return younger;
    return Candidate{};  // output is a don't-care without a hit
  };

  const std::size_t num_blocks = total_cells_ / block_size_;
  Candidate* const level = tree_scratch_.data();
  Candidate* const blocks = tree_scratch_.data() + block_size_;

  for (std::size_t b = 0; b < num_blocks; ++b) {
    // Leaf level: one candidate per cell.
    for (std::size_t c = 0; c < block_size_; ++c) {
      const std::size_t idx = b * block_size_ + c;
      level[c].hit = idx < occupancy_ && cell_matches(idx, probe);
      level[c].location = idx;
      level[c].cookie = cookie_[idx];
    }
    // log2(block_size) levels of 2-to-1 priority muxes.  The lower-index
    // (older) input of each pair wins when both match.
    for (std::size_t len = block_size_; len > 1; len >>= 1) {
      for (std::size_t i = 0; i < len / 2; ++i) {
        level[i] = pick(level[2 * i], level[2 * i + 1]);
      }
    }
    blocks[b] = level[0];
  }

  // Cross-block reduction ("cell block outputs are combined and
  // prioritized in the same manner"), padded to a power of two with
  // never-matching candidates.
  const std::size_t padded_blocks = pow2_ceil(num_blocks);
  for (std::size_t b = num_blocks; b < padded_blocks; ++b) {
    blocks[b] = Candidate{};
  }
  for (std::size_t len = padded_blocks; len > 1; len >>= 1) {
    for (std::size_t i = 0; i < len / 2; ++i) {
      blocks[i] = pick(blocks[2 * i], blocks[2 * i + 1]);
    }
  }

  if (!blocks[0].hit) return ArrayMatch{};
  return ArrayMatch{true, blocks[0].location, blocks[0].cookie};
}

ArrayMatch AlpuArray::match_and_delete(const Probe& probe) {
  const ArrayMatch m = match(probe);
  if (m.hit) delete_at(m.location);
  return m;
}

void AlpuArray::delete_at(std::size_t location) {
  ALPU_ASSERT(location < occupancy_, "delete past the valid prefix");
  // Broadcast match location: every younger cell shifts one slot toward
  // the high-priority end — one block move per plane — and the vacated
  // slot at the tail is invalidated.
  std::size_t moved = occupancy_ - 1 - location;
  if (testing::inject_compaction_off_by_one && moved > 0) --moved;
  if (moved > 0) {
    std::memmove(&bits_[location], &bits_[location + 1],
                 moved * sizeof(MatchWord));
    std::memmove(&mask_[location], &mask_[location + 1],
                 moved * sizeof(MatchWord));
    std::memmove(&cookie_[location], &cookie_[location + 1],
                 moved * sizeof(Cookie));
    counters_.compaction_moves += moved;
  }
  --occupancy_;
  bits_[occupancy_] = 0;
  mask_[occupancy_] = 0;
  cookie_[occupancy_] = 0;
  valid_[occupancy_ >> 6] &= ~(std::uint64_t{1} << (occupancy_ & 63));
  // Cells [location, old occupancy) were rewritten by the shift and the
  // tail clear; the verify that preceded this op (match path) vouches
  // for the source range, so recomputing parity here cannot launder a
  // flip.
  parity_update_range(location, occupancy_ + 1);
  ALPU_INVARIANT(planes_consistent(),
                 "delete compaction broke the prefix invariant");
}

void AlpuArray::reset() {
  std::fill(bits_.begin(), bits_.end(), 0);
  std::fill(mask_.begin(), mask_.end(), 0);
  std::fill(cookie_.begin(), cookie_.end(), 0);
  std::fill(valid_.begin(), valid_.end(), 0);
  occupancy_ = 0;
  if (fault_) {
    // RESET is the recovery action: it rewrites every SRAM bit, so it
    // clears latent corruption and releases the quarantine.  The
    // processor re-shadows its authoritative lists afterwards.
    parity_rebuild_all();
    fault_->quarantined = false;
    fault_->first_pending_inject = common::kTimeNever;
  }
}

std::size_t AlpuArray::invalidate_matching(const Probe& selector) {
  // Broadcast compare (word-parallel, like a probe), then compact
  // survivors toward the high-priority end preserving relative order —
  // maximal runs of survivors move as single memmoves per plane.
  //
  // Unlike a match, the sweep always takes its don't-care mask from the
  // SELECTOR (the unexpected flavour's input-mask datapath), whatever
  // the unit's flavour: the stored per-cell masks describe what the
  // cell accepts, not what selects the cell.
  const MatchWord care = ~selector.mask & significant_mask_;
  const MatchWord pb = selector.bits;
  // Detection point: the sweep's broadcast compare reads every plane,
  // so it verifies like a probe does.  A quarantined array sweeps
  // nothing — its contents are untrustworthy until RESET.
  if (fault_ && !parity_ok()) return 0;
  const std::size_t words = (occupancy_ + 63) >> 6;
  for (std::size_t w = 0; w < words; ++w) {
    const std::size_t base = w << 6;
    select_scratch_[w] =
        hit_word_uniform(bits_.data() + base, pb, care) & valid_[w];
  }

  const auto selected = [&](std::size_t i) {
    return (select_scratch_[i >> 6] >> (i & 63)) & 1u;
  };

  std::size_t keep = 0;
  std::size_t i = 0;
  while (i < occupancy_) {
    if (selected(i)) {
      ++i;
      continue;
    }
    std::size_t j = i + 1;  // extend the survivor run
    while (j < occupancy_ && !selected(j)) ++j;
    const std::size_t run = j - i;
    if (keep != i) {
      std::memmove(&bits_[keep], &bits_[i], run * sizeof(MatchWord));
      std::memmove(&mask_[keep], &mask_[i], run * sizeof(MatchWord));
      std::memmove(&cookie_[keep], &cookie_[i], run * sizeof(Cookie));
      counters_.compaction_moves += run;
    }
    keep += run;
    i = j;
  }

  const std::size_t removed = occupancy_ - keep;
  for (std::size_t k = keep; k < occupancy_; ++k) {
    bits_[k] = 0;
    mask_[k] = 0;
    cookie_[k] = 0;
    valid_[k >> 6] &= ~(std::uint64_t{1} << (k & 63));
  }
  occupancy_ = keep;
  // The survivor moves and the tail clear rewrote an arbitrary subset
  // of [0, old occupancy); the verify above vouches for the sources.
  if (removed > 0) parity_update_range(0, keep + removed);
  ALPU_INVARIANT(planes_consistent(),
                 "RESET PROCESS sweep broke the prefix invariant");
  return removed;
}

bool AlpuArray::planes_consistent() const {
  // With the fault model installed, injected corruption deliberately
  // breaks the prefix invariant (that is the point); parity, not this
  // structural check, is the integrity oracle in that mode.
  if (fault_) return true;
  const std::size_t padded = bits_.size();
  for (std::size_t i = 0; i < padded; ++i) {
    const bool valid = valid_bit(i);
    if (valid != (i < occupancy_)) return false;
    if (!valid && (bits_[i] != 0 || mask_[i] != 0 || cookie_[i] != 0)) {
      return false;
    }
  }
  return true;
}

Cell AlpuArray::cell(std::size_t i) const {
  ALPU_ASSERT(i < total_cells_, "cell index out of range");
  return Cell{bits_[i], mask_[i], cookie_[i], valid_bit(i)};
}

// ---- transient-fault model -------------------------------------------------

void AlpuArray::install_fault_model(const SeuConfig& config,
                                    std::uint64_t stream) {
  ALPU_ASSERT(!fault_, "fault model installed twice");
  fault_ = std::make_unique<SeuState>(config, stream);
  const std::size_t padded = bits_.size();
  fault_->parity_bits.assign(padded / 64, 0);
  fault_->parity_mask.assign(padded / 64, 0);
  fault_->parity_cookie.assign(padded / 64, 0);
  fault_->parity_valid.assign((valid_.size() + 63) / 64, 0);
  parity_rebuild_all();
}

void AlpuArray::parity_update_cell(std::size_t i) {
  if (!fault_) return;
  const std::size_t w = i >> 6;
  const std::uint64_t bit = std::uint64_t{1} << (i & 63);
  const auto put = [&](std::vector<std::uint64_t>& plane, bool p) {
    if (p) {
      plane[w] |= bit;
    } else {
      plane[w] &= ~bit;
    }
  };
  put(fault_->parity_bits, std::popcount(bits_[i]) & 1);
  put(fault_->parity_mask, std::popcount(mask_[i]) & 1);
  put(fault_->parity_cookie, std::popcount(cookie_[i]) & 1);
}

void AlpuArray::parity_update_valid_word(std::size_t w) {
  if (!fault_) return;
  const std::uint64_t bit = std::uint64_t{1} << (w & 63);
  if (std::popcount(valid_[w]) & 1) {
    fault_->parity_valid[w >> 6] |= bit;
  } else {
    fault_->parity_valid[w >> 6] &= ~bit;
  }
}

void AlpuArray::parity_update_range(std::size_t lo, std::size_t hi) {
  if (!fault_) return;
  hi = hi < bits_.size() ? hi : bits_.size();
  for (std::size_t i = lo; i < hi; ++i) parity_update_cell(i);
  for (std::size_t w = lo >> 6; w <= (hi - 1) >> 6 && hi > lo; ++w) {
    parity_update_valid_word(w);
  }
}

void AlpuArray::parity_rebuild_all() {
  parity_update_range(0, bits_.size());
}

void AlpuArray::seu_advance(common::TimePs now) {
  if (!fault_) return;
  SeuState& f = *fault_;
  f.last_advance = now;
  if (f.config.rate <= 0.0) {
    f.last_tick = now;  // parity/scrub-only installation: nothing to draw
    return;
  }
  while (f.last_tick + f.config.tick_ps <= now) {
    f.last_tick += f.config.tick_ps;
    // Fixed-draw discipline (like net::FaultInjector::decide): every
    // tick consumes exactly four draws whether or not it fires, so one
    // upset never perturbs the position of the next.
    const bool fire = f.rng.chance(f.config.rate);
    const std::size_t cell = f.rng.below(bits_.size());
    const std::uint64_t plane = f.rng.below(4);
    const unsigned bit = static_cast<unsigned>(f.rng.below(64));
    if (!fire) continue;
    switch (plane) {
      case 0:
        bits_[cell] ^= MatchWord{1} << bit;  // lint: ok(alpu-plane-write-outside-parity) — the injector IS the corruption source
        break;
      case 1:
        mask_[cell] ^= MatchWord{1} << bit;  // lint: ok(alpu-plane-write-outside-parity) — injector
        break;
      case 2:
        cookie_[cell] ^= Cookie{1} << (bit & 31);  // lint: ok(alpu-plane-write-outside-parity) — injector
        break;
      default:
        valid_[cell >> 6] ^= std::uint64_t{1} << (cell & 63);  // lint: ok(alpu-plane-write-outside-parity) — injector
        break;
    }
    ++f.stats.seu_injected;
    if (f.first_pending_inject == common::kTimeNever && !f.quarantined) {
      f.first_pending_inject = f.last_tick;
    }
  }
}

bool AlpuArray::parity_ok() const {
  SeuState& f = *fault_;
  if (f.quarantined) return false;
  bool ok = true;
  const std::size_t words = bits_.size() >> 6;
  for (std::size_t w = 0; w < words && ok; ++w) {
    std::uint64_t pb = 0;
    std::uint64_t pm = 0;
    std::uint64_t pc = 0;
    const std::size_t base = w << 6;
    for (unsigned j = 0; j < 64; ++j) {
      pb |= static_cast<std::uint64_t>(std::popcount(bits_[base + j]) & 1)
            << j;
      pm |= static_cast<std::uint64_t>(std::popcount(mask_[base + j]) & 1)
            << j;
      pc |= static_cast<std::uint64_t>(std::popcount(cookie_[base + j]) & 1)
            << j;
    }
    ok = pb == f.parity_bits[w] && pm == f.parity_mask[w] &&
         pc == f.parity_cookie[w];
  }
  for (std::size_t w = 0; w < valid_.size() && ok; ++w) {
    const bool p = std::popcount(valid_[w]) & 1;
    const bool stored = (f.parity_valid[w >> 6] >> (w & 63)) & 1;
    ok = p == stored;
  }
  if (ok) return true;
  // First mismatch of the episode: latch the quarantine.  Everything
  // after this answers PARITY FAULT until RESET rewrites the planes.
  f.quarantined = true;
  ++f.stats.parity_faults;
  if (f.first_pending_inject != common::kTimeNever &&
      f.last_advance >= f.first_pending_inject) {
    f.stats.detect_latency_sum_ps += f.last_advance - f.first_pending_inject;
  }
  f.first_pending_inject = common::kTimeNever;
  return false;
}

bool AlpuArray::scrub() {
  if (!fault_) return false;
  ++fault_->stats.scrub_sweeps;
  return !parity_ok();
}

void AlpuArray::corrupt_for_test(unsigned plane, std::size_t cell,
                                 unsigned bit) {
  ALPU_ASSERT(plane < 4 && cell < bits_.size() && bit < 64,
              "corrupt_for_test target out of range");
  switch (plane) {
    case 0:
      bits_[cell] ^= MatchWord{1} << bit;  // lint: ok(alpu-plane-write-outside-parity) — test-only corruption
      break;
    case 1:
      mask_[cell] ^= MatchWord{1} << bit;  // lint: ok(alpu-plane-write-outside-parity) — test-only corruption
      break;
    case 2:
      cookie_[cell] ^= Cookie{1} << (bit & 31);  // lint: ok(alpu-plane-write-outside-parity) — test-only corruption
      break;
    default:
      valid_[cell >> 6] ^= std::uint64_t{1} << (cell & 63);  // lint: ok(alpu-plane-write-outside-parity) — test-only corruption
      break;
  }
}

}  // namespace alpu::hw
