// Functional core of the associative match array (Figure 2).
//
// This class captures exactly what the cell/block/unit hierarchy
// computes, independent of pipeline timing: an ordered array of valid
// cells where
//   * new entries enter at the tail (the "left"; lowest priority),
//   * a probe compares against every valid cell in parallel,
//   * the priority network selects the OLDEST matching cell (MPI's
//     "first posted receive wins" rule),
//   * a successful match deletes its cell, with every younger cell
//     shifting up one slot (the broadcast-match-location compaction of
//     Section III-B; no holes are left by deletion).
//
// Two match paths are provided: `match()` is the straightforward linear
// specification, and `match_tree()` evaluates the same answer through an
// explicit block-structured priority-mux reduction mirroring the RTL
// (pairwise muxes within blocks, then across blocks).  Tests assert the
// two agree on all inputs — the hardware-fidelity check.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "alpu/types.hpp"

namespace alpu::hw {

/// One storage cell (Figure 2a/2b).
struct Cell {
  MatchWord bits = 0;
  MatchWord mask = 0;   ///< stored mask; meaningful only in posted flavour
  Cookie cookie = 0;    ///< the software "tag" (pointer into NIC RAM)
  bool valid = false;
};

/// Result of a probe against the array.
struct ArrayMatch {
  bool hit = false;
  std::size_t location = 0;  ///< index of the matched cell (oldest first)
  Cookie cookie = 0;
};

class AlpuArray {
 public:
  /// `total_cells` must be a positive multiple of `block_size`, and
  /// `block_size` a power of two (Section III-B restriction).
  ///
  /// `significant_mask` selects which bit positions the comparators are
  /// wired for: the 42-bit MPI packing by default, wider for the
  /// multi-process extension (PID bits, footnote 1) or full-width
  /// Portals-style matching.
  AlpuArray(AlpuFlavor flavor, std::size_t total_cells,
            std::size_t block_size,
            MatchWord significant_mask = match::kFullMask);

  AlpuFlavor flavor() const { return flavor_; }
  std::size_t capacity() const { return cells_.size(); }
  std::size_t block_size() const { return block_size_; }
  std::size_t occupancy() const { return occupancy_; }
  std::size_t free_slots() const { return capacity() - occupancy_; }
  bool full() const { return occupancy_ == capacity(); }
  bool empty() const { return occupancy_ == 0; }

  /// Insert at the tail.  Returns false when full (the processor is
  /// expected to respect the free-count from START ACKNOWLEDGE).
  [[nodiscard]] bool insert(MatchWord bits, MatchWord mask, Cookie cookie);

  /// Pure probe: the oldest matching cell, if any.  Does not modify state.
  ArrayMatch match(const Probe& probe) const;

  /// Same answer computed through the block/priority-mux reduction.
  ArrayMatch match_tree(const Probe& probe) const;

  /// Probe and, on a hit, delete the matched cell with upward compaction
  /// (the complete match pipeline's architectural effect).
  ArrayMatch match_and_delete(const Probe& probe);

  /// Clear all valid flags (RESET).
  void reset();

  /// Invalidate every cell matching `selector` (compacting as deletes
  /// do) and return how many were removed.  This is the datapath of the
  /// RESET PROCESS extension: a broadcast compare followed by a
  /// multi-delete sweep.
  std::size_t invalidate_matching(const Probe& selector);

  MatchWord significant_mask() const { return significant_mask_; }

  /// The i-th oldest valid cell (test/diagnostic access).
  const Cell& cell(std::size_t i) const { return cells_[i]; }

 private:
  bool cell_matches(const Cell& cell, const Probe& probe) const;
  void delete_at(std::size_t location);

  AlpuFlavor flavor_;
  std::size_t block_size_;
  MatchWord significant_mask_;
  // Index 0 is the oldest entry (the paper's right-most, highest-priority
  // cell); occupancy_ cells starting at 0 are valid and contiguous —
  // deletion compaction maintains this invariant.
  std::vector<Cell> cells_;
  std::size_t occupancy_ = 0;
};

}  // namespace alpu::hw
