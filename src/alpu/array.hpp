// Functional core of the associative match array (Figure 2).
//
// This class captures exactly what the cell/block/unit hierarchy
// computes, independent of pipeline timing: an ordered array of valid
// cells where
//   * new entries enter at the tail (the "left"; lowest priority),
//   * a probe compares against every valid cell in parallel,
//   * the priority network selects the OLDEST matching cell (MPI's
//     "first posted receive wins" rule),
//   * a successful match deletes its cell, with every younger cell
//     shifting up one slot (the broadcast-match-location compaction of
//     Section III-B; no holes are left by deletion).
//
// Storage is struct-of-arrays: parallel `bits[]` / `mask[]` / `cookie[]`
// planes plus a 64-bit-per-word validity bitmap, mirroring how the
// hardware lays each field across the cell array rather than how C++
// would lay out a struct.  A probe is a strided compare over the bit
// planes that emits one hit bitmask per 64 cells, and the hardware
// priority network collapses to `countr_zero` of the first non-zero
// word — word-parallel TCAM emulation, with no allocation or branching
// per cell.  On x86-64 the compare runs through a runtime-dispatched
// AVX2 kernel (four cells per step, movemask bit-gather); elsewhere a
// portable branch-free scalar loop.  Deletion compaction is memmove
// over the planes.
//
// Two match paths are provided: `match()` is the word-parallel linear
// specification, and `match_tree()` evaluates the same answer through an
// explicit block-structured priority-mux reduction mirroring the RTL
// (pairwise muxes within blocks, then across blocks), using fixed
// per-instance scratch buffers (no per-probe allocation).  Tests assert
// the two agree on all inputs — the hardware-fidelity check — and
// `reference.hpp` retains the original cell-at-a-time implementation as
// the differential-testing oracle.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "alpu/seu.hpp"
#include "alpu/types.hpp"
#include "common/stats.hpp"

namespace alpu::hw {

namespace testing {
/// Test-only fault injection for the model checker and its self-tests
/// (tests/test_check.cpp): when set, AlpuArray's deletion compaction
/// shifts one cell too few, leaving a duplicated entry where the tail
/// should have moved up — the classic off-by-one the bounded checker
/// must catch with a counterexample.  Never set outside tests and the
/// `alpusim check --inject-compaction-bug` demonstration path.
extern bool inject_compaction_off_by_one;

/// Must-fail teeth for the fault subsystem: when armed, the next
/// successful insert (into any array, so arm it with `--jobs 1`) flips
/// the source LSB of the bits plane of cell 0 directly in storage —
/// bypassing the parity-maintaining accessors — then disarms itself.
/// With no parity installed (zero SEU rate) the flip is silent at the
/// hardware level, so only the end-to-end checks can catch it: the
/// bounded checker must produce a counterexample and a chaos soak must
/// fail its exactly-once/in-order verdict.  CI runs both as must-fail
/// steps.
extern std::atomic<bool> inject_silent_flip;
}  // namespace testing

/// One storage cell (Figure 2a/2b).  The SoA engine materializes these
/// on demand for tests/diagnostics; the RTL and pipelined models still
/// store them directly.
struct Cell {
  MatchWord bits = 0;
  MatchWord mask = 0;   ///< stored mask; meaningful only in posted flavour
  Cookie cookie = 0;    ///< the software "tag" (pointer into NIC RAM)
  bool valid = false;
};

/// Result of a probe against the array.
struct ArrayMatch {
  bool hit = false;
  std::size_t location = 0;  ///< index of the matched cell (oldest first)
  Cookie cookie = 0;
};

class AlpuArray {
 public:
  /// `total_cells` must be a positive multiple of `block_size`, and
  /// `block_size` a power of two (Section III-B restriction).
  ///
  /// `significant_mask` selects which bit positions the comparators are
  /// wired for: the 42-bit MPI packing by default, wider for the
  /// multi-process extension (PID bits, footnote 1) or full-width
  /// Portals-style matching.
  AlpuArray(AlpuFlavor flavor, std::size_t total_cells,
            std::size_t block_size,
            MatchWord significant_mask = match::kFullMask);

  AlpuFlavor flavor() const { return flavor_; }
  std::size_t capacity() const { return total_cells_; }
  std::size_t block_size() const { return block_size_; }
  std::size_t occupancy() const { return occupancy_; }
  std::size_t free_slots() const { return capacity() - occupancy_; }
  bool full() const { return occupancy_ == capacity(); }
  bool empty() const { return occupancy_ == 0; }

  /// Insert at the tail.  Returns false when full (the processor is
  /// expected to respect the free-count from START ACKNOWLEDGE).
  [[nodiscard]] bool insert(MatchWord bits, MatchWord mask, Cookie cookie);

  /// Pure probe: the oldest matching cell, if any.  Does not modify
  /// array contents (probe counters advance).
  ArrayMatch match(const Probe& probe) const;

  /// Same answer computed through the block/priority-mux reduction.
  ArrayMatch match_tree(const Probe& probe) const;

  /// Probe and, on a hit, delete the matched cell with upward compaction
  /// (the complete match pipeline's architectural effect).
  ArrayMatch match_and_delete(const Probe& probe);

  /// Clear all valid flags (RESET).
  void reset();

  /// Invalidate every cell matching `selector` (compacting as deletes
  /// do) and return how many were removed.  This is the datapath of the
  /// RESET PROCESS extension: a broadcast compare followed by a
  /// multi-delete sweep.
  std::size_t invalidate_matching(const Probe& selector);

  MatchWord significant_mask() const { return significant_mask_; }

  /// The i-th cell, materialized from the bit planes (test/diagnostic
  /// access; returns by value — there is no Cell struct in storage).
  Cell cell(std::size_t i) const;

  /// Probe-level work counters (probes / cells_scanned /
  /// compaction_moves).  `cells_scanned` counts comparator evaluations
  /// at the engine's 64-cell word granularity — the cells a probe's
  /// word-parallel scan actually touched before the priority network
  /// resolved.
  const common::MatchCounters& counters() const { return counters_; }

  // ---- transient-fault model (seu.hpp) ----

  /// Install the SEU injector + parity protection.  `stream` seeds this
  /// array's private injector stream.  Must be called before any entry
  /// is inserted; without this call the array has no parity state and
  /// the probe path is byte-identical to the fault-free build.
  void install_fault_model(const SeuConfig& config, std::uint64_t stream);
  bool fault_model_installed() const { return fault_ != nullptr; }

  /// Sticky fault latch: true from the first failed parity check until
  /// reset().  While quarantined, probes and sweeps return misses and
  /// do not touch the (untrustworthy) planes.
  bool quarantined() const { return fault_ && fault_->quarantined; }

  SeuStats seu_stats() const { return fault_ ? fault_->stats : SeuStats{}; }

  /// Catch the injector up to `now`: one fixed-draw Bernoulli trial per
  /// elapsed tick, each firing flipping one random bit of one random
  /// plane without updating parity.  Called by the owning unit at every
  /// operation and scrub, so injection times are deterministic
  /// functions of the (shard-independent) event schedule.
  void seu_advance(common::TimePs now);

  /// Full-array parity verification (every checker evaluates in
  /// parallel in hardware).  Latches the quarantine on the first
  /// mismatch.  Returns false when the array is (now) quarantined.
  bool parity_ok() const;

  /// Background scrub sweep: counts the sweep and verifies parity.
  /// Returns true when the array is quarantined afterwards.
  bool scrub();

  /// Test access: flip one stored bit directly, without any parity
  /// update.  Plane 0/1/2 = bits/mask/cookie (bit < 64, cookie bits
  /// taken mod 32); plane 3 = the validity bit of cell `cell` (`bit`
  /// ignored).  Used by the checker's kCorrupt op and the fuzzers.
  void corrupt_for_test(unsigned plane, std::size_t cell, unsigned bit);

 private:
  static constexpr std::size_t kMiss = static_cast<std::size_t>(-1);

  /// Word-parallel scan: index of the oldest matching valid cell, or
  /// kMiss.  The whole hot path of the engine.
  std::size_t find_oldest(const Probe& probe) const;

  bool cell_matches(std::size_t i, const Probe& probe) const;
  /// Structural invariant (ALPU_CHECKED builds): the validity bitmap is
  /// exactly the [0, occupancy) prefix and every plane is zeroed beyond
  /// it — what the word-parallel probe and the padding-free tail rely on.
  bool planes_consistent() const;
  bool valid_bit(std::size_t i) const {
    return (valid_[i >> 6] >> (i & 63)) & 1u;
  }
  void delete_at(std::size_t location);

  // Parity maintenance (no-ops unless the fault model is installed).
  // Every plane mutation must pass through one of these — a lint rule
  // (alpu-plane-write-outside-parity) flags raw writes elsewhere.
  void parity_update_cell(std::size_t i);
  void parity_update_valid_word(std::size_t w);
  /// Recompute parity for cells [lo, hi) and the validity words that
  /// cover them (compaction memmoves rewrite whole ranges).
  void parity_update_range(std::size_t lo, std::size_t hi);
  void parity_rebuild_all();

  AlpuFlavor flavor_;
  std::size_t total_cells_;
  std::size_t block_size_;
  MatchWord significant_mask_;
  std::size_t occupancy_ = 0;

  // SoA planes, padded to a whole number of 64-cell words so the match
  // loop never needs a tail case.  Index 0 is the oldest entry (the
  // paper's right-most, highest-priority cell); occupancy_ cells
  // starting at 0 are valid and contiguous — deletion compaction
  // maintains this invariant, so valid_ is always a prefix bitmap.
  std::vector<MatchWord> bits_;
  std::vector<MatchWord> mask_;
  std::vector<Cookie> cookie_;
  std::vector<std::uint64_t> valid_;  ///< bit j of word w == cell 64w+j

  /// match_tree() scratch (priority-mux candidates), sized once at
  /// construction: [0, block_size) for the in-block reduction, then
  /// [0, padded_blocks) for the cross-block reduction.  mutable because
  /// match_tree is logically const; instances are single-threaded (one
  /// simulated machine per sweep worker).
  struct Candidate {
    bool hit = false;
    std::size_t location = 0;
    Cookie cookie = 0;
  };
  mutable std::vector<Candidate> tree_scratch_;
  mutable std::vector<std::uint64_t> select_scratch_;  ///< sweep bitmasks

  /// Transient-fault state (null on the zero-rate path).  Detection
  /// latches state from const probe paths, which the unique_ptr
  /// indirection permits without a const_cast.
  std::unique_ptr<SeuState> fault_;

  mutable common::MatchCounters counters_;
};

}  // namespace alpu::hw
