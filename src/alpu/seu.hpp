// Transient-fault (SEU) model for the ALPU's SRAM planes.
//
// The match array is a dense associative SRAM — exactly the structure
// most exposed to single-event upsets on a real NIC.  This header holds
// the configuration, counters and per-array state of the fault
// subsystem:
//
//   * a seeded injector that flips one random bit of one random plane
//     (bits/mask/cookie/validity) per firing, driven by the same
//     fixed-draw discipline as `net::FaultInjector` (every tick consumes
//     the same number of RNG draws whether or not it fires), so runs are
//     reproducible from a seed and byte-identical across shard counts;
//   * per-cell parity on the data planes and per-word parity on the
//     validity bitmap, maintained by AlpuArray's mutators and verified
//     in bulk at every probe/sweep (all parity checkers evaluate in
//     parallel in hardware) — corruption is *detected* and quarantines
//     the unit instead of silently mis-matching;
//   * the knobs of the firmware recovery path: a background scrub sweep
//     that bounds detection latency for corruption in dormant entries.
//
// `SeuConfig::any() == false` (the default) installs nothing: the
// zero-rate path allocates no parity state and adds no work to the
// probe hot path, so performance baselines are unchanged.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/time.hpp"

namespace alpu::hw {

struct SeuConfig {
  /// Probability that one bit flip fires per injection tick (per unit).
  /// 0 disables injection (parity may still be installed for scrubbing).
  double rate = 0.0;
  /// Injector stream seed.  The NIC derives a distinct per-unit stream
  /// from this (node id and flavour folded in), like per-link fault
  /// streams, so units corrupt independently but reproducibly.
  std::uint64_t seed = 0x5eed;
  /// Injection tick: upsets are drawn once per this much simulated time
  /// (lazily, caught up at the unit's next operation — a free-running
  /// per-tick process would keep the event heap alive forever).
  common::TimePs tick_ps = 1'000'000;  // 1 us
  /// Background scrub sweep period; 0 disables scrubbing (corruption is
  /// then only detected when a probe or sweep touches the array).
  common::TimePs scrub_interval_ps = 0;
  /// Consecutive scrub sweeps with no unit activity before the scrub
  /// clock parks (re-armed by the next probe/command), so an idle unit
  /// cannot keep the simulation from draining.
  unsigned scrub_idle_limit = 4;
  /// Install parity protection even with no injector and no scrub.  The
  /// bounded model checker uses this: it corrupts deterministically
  /// (OpKind::kCorrupt -> corrupt_for_test) and needs only detection.
  bool force_parity = false;

  /// True if any part of the fault model must be installed.
  bool any() const {
    return rate > 0.0 || scrub_interval_ps > 0 || force_parity;
  }
};

/// Counters of the fault subsystem, per unit (summed per NIC).
struct SeuStats {
  std::uint64_t seu_injected = 0;   ///< bit flips written into the planes
  std::uint64_t parity_faults = 0;  ///< detection episodes (quarantines)
  std::uint64_t scrub_sweeps = 0;   ///< background verify sweeps run
  /// Injection-to-detection latency, summed over episodes whose first
  /// pending flip came from the injector (divide by parity_faults for
  /// the mean the EXPERIMENTS robustness note reports).
  common::TimePs detect_latency_sum_ps = 0;

  SeuStats& operator+=(const SeuStats& o) {
    seu_injected += o.seu_injected;
    parity_faults += o.parity_faults;
    scrub_sweeps += o.scrub_sweeps;
    detect_latency_sum_ps += o.detect_latency_sum_ps;
    return *this;
  }
};

/// Per-array fault-model state (parity bitmaps + injector stream).
/// Owned by AlpuArray when installed; all logic lives in AlpuArray,
/// which is the only code with plane access.  Members the detection
/// path latches from const probe methods are plain (the state is
/// reached through a unique_ptr, which does not propagate constness).
struct SeuState {
  explicit SeuState(const SeuConfig& cfg, std::uint64_t stream)
      : config(cfg), rng(stream) {}

  SeuConfig config;
  common::Xoshiro256 rng;
  /// Injection ticks consumed up to this simulated time.
  common::TimePs last_tick = 0;
  /// Time of the most recent catch-up (stamps detection latency).
  common::TimePs last_advance = 0;
  /// Time of the oldest injected-but-undetected flip, or kTimeNever.
  common::TimePs first_pending_inject = common::kTimeNever;
  /// Sticky until RESET: every probe answers PARITY FAULT while set.
  bool quarantined = false;
  SeuStats stats;

  // Parity bitmaps: bit i of word i/64 protects cell i of the matching
  // data plane; bit w of parity_valid[w/64] protects validity word w.
  std::vector<std::uint64_t> parity_bits;
  std::vector<std::uint64_t> parity_mask;
  std::vector<std::uint64_t> parity_cookie;
  std::vector<std::uint64_t> parity_valid;
};

}  // namespace alpu::hw
