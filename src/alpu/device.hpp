// The NIC-facing ALPU device interface.
//
// Two implementations exist at different fidelity:
//   * hw::Alpu           — transaction-level (whole-operation latencies
//                          against the idealized compacted array);
//   * hw::PipelinedAlpu  — stage-level (explicit pipeline stages over
//                          the RTL datapath with real compaction and
//                          insert bubbles).
// They are differentially tested to produce identical response streams;
// the firmware talks to either through this interface, and system-level
// experiments can be re-run at either fidelity as a cross-check.
#pragma once

#include <cstddef>
#include <optional>

#include "alpu/types.hpp"

namespace alpu::hw {

class AlpuDevice {
 public:
  virtual ~AlpuDevice() = default;

  /// Deliver a probe on the header FIFO (false == FIFO full).
  [[nodiscard]] virtual bool push_probe(const Probe& probe) = 0;
  /// Deliver a command on the command FIFO.
  [[nodiscard]] virtual bool push_command(const Command& cmd) = 0;
  /// Take the oldest response, if any.
  virtual std::optional<Response> pop_result() = 0;
  virtual bool result_available() const = 0;

  /// Total cells in the match array.
  virtual std::size_t capacity() const = 0;
  /// Valid entries currently stored.
  virtual std::size_t occupancy() const = 0;
};

}  // namespace alpu::hw
