// The NIC-facing ALPU device interface.
//
// Two implementations exist at different fidelity:
//   * hw::Alpu           — transaction-level (whole-operation latencies
//                          against the idealized compacted array);
//   * hw::PipelinedAlpu  — stage-level (explicit pipeline stages over
//                          the RTL datapath with real compaction and
//                          insert bubbles).
// They are differentially tested to produce identical response streams;
// the firmware talks to either through this interface, and system-level
// experiments can be re-run at either fidelity as a cross-check.
#pragma once

#include <cstddef>
#include <functional>
#include <optional>

#include "alpu/seu.hpp"
#include "alpu/types.hpp"

namespace alpu::hw {

class AlpuDevice {
 public:
  virtual ~AlpuDevice() = default;

  /// Deliver a probe on the header FIFO (false == FIFO full).
  [[nodiscard]] virtual bool push_probe(const Probe& probe) = 0;
  /// Deliver a command on the command FIFO.
  [[nodiscard]] virtual bool push_command(const Command& cmd) = 0;
  /// Take the oldest response, if any.
  virtual std::optional<Response> pop_result() = 0;
  virtual bool result_available() const = 0;

  /// Total cells in the match array.
  virtual std::size_t capacity() const = 0;
  /// Valid entries currently stored.
  virtual std::size_t occupancy() const = 0;

  // ---- transient-fault model (models without one use the defaults) ----

  /// True while the unit has latched a parity fault and is quarantined
  /// awaiting RESET + re-shadow.  The firmware polls this so dormant
  /// (scrub-detected) corruption is recovered without waiting for a
  /// probe to bounce.
  virtual bool fault_pending() const { return false; }
  /// Fault-subsystem counters (zeros for models without a fault model).
  virtual SeuStats seu_stats() const { return SeuStats{}; }
  /// Install a callback fired when a background scrub latches a fault
  /// (probe-path detections already reach the firmware as responses).
  // lint: ok(std-function-hot-path) — setup-time registration, one
  // invocation per (rare) scrub-detected fault episode.
  virtual void set_fault_callback(std::function<void()>) {}
};

}  // namespace alpu::hw
