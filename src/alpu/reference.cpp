#include "alpu/reference.hpp"

#include "common/check.hpp"

namespace alpu::hw {

namespace {
bool is_pow2(std::size_t x) { return x != 0 && (x & (x - 1)) == 0; }
}  // namespace

ReferenceAlpuArray::ReferenceAlpuArray(AlpuFlavor flavor,
                                       std::size_t total_cells,
                                       std::size_t block_size,
                                       MatchWord significant_mask)
    : flavor_(flavor),
      block_size_(block_size),
      significant_mask_(significant_mask),
      cells_(total_cells) {
  ALPU_ASSERT(total_cells > 0, "match array must have at least one cell");
  ALPU_ASSERT(is_pow2(block_size), "block size must be a power of 2 (III-B)");
  ALPU_ASSERT(total_cells % block_size == 0,
              "cell count must be a whole number of blocks");
  ALPU_ASSERT(significant_mask != 0,
              "comparators need at least one wired bit");
}

bool ReferenceAlpuArray::cell_matches(const Cell& cell,
                                      const Probe& probe) const {
  if (!cell.valid) return false;  // invalid data cannot produce a match
  const MatchWord dont_care =
      flavor_ == AlpuFlavor::kPostedReceive ? cell.mask : probe.mask;
  return ((cell.bits ^ probe.bits) & ~dont_care & significant_mask_) == 0;
}

bool ReferenceAlpuArray::insert(MatchWord bits, MatchWord mask,
                                Cookie cookie) {
  if (full()) return false;
  Cell& cell = cells_[occupancy_++];
  cell.bits = bits;
  cell.mask = mask;
  cell.cookie = cookie;
  cell.valid = true;
  return true;
}

ArrayMatch ReferenceAlpuArray::match(const Probe& probe) const {
  // Specification: the oldest (lowest-index) matching valid cell wins.
  for (std::size_t i = 0; i < occupancy_; ++i) {
    if (cell_matches(cells_[i], probe)) {
      return ArrayMatch{true, i, cells_[i].cookie};
    }
  }
  return ArrayMatch{};
}

ArrayMatch ReferenceAlpuArray::match_tree(const Probe& probe) const {
  // Stage 2 of the pipeline: every cell produces (match AND valid).
  // Stages 3-4: pairwise priority muxes inside each block, then the same
  // reduction across block outputs.
  struct Candidate {
    bool hit = false;
    std::size_t location = 0;
    Cookie cookie = 0;
  };

  const std::size_t num_blocks = cells_.size() / block_size_;
  std::vector<Candidate> block_out(num_blocks);

  for (std::size_t b = 0; b < num_blocks; ++b) {
    // Leaf level: one candidate per cell.
    std::vector<Candidate> level(block_size_);
    for (std::size_t c = 0; c < block_size_; ++c) {
      const std::size_t idx = b * block_size_ + c;
      level[c].hit = idx < occupancy_ && cell_matches(cells_[idx], probe);
      level[c].location = idx;
      level[c].cookie = cells_[idx].cookie;
    }
    // log2(block_size) levels of 2-to-1 priority muxes.  The lower-index
    // (older) input of each pair wins when both match.
    while (level.size() > 1) {
      std::vector<Candidate> next(level.size() / 2);
      for (std::size_t i = 0; i < next.size(); ++i) {
        const Candidate& older = level[2 * i];
        const Candidate& younger = level[2 * i + 1];
        if (older.hit) {
          next[i] = older;
        } else if (younger.hit) {
          next[i] = younger;
        } else {
          next[i] = Candidate{};  // output is a don't-care without a hit
        }
      }
      level = std::move(next);
    }
    block_out[b] = level[0];
  }

  // Cross-block reduction, padding to a power of two.
  std::vector<Candidate> level = std::move(block_out);
  while (level.size() > 1) {
    if (level.size() % 2 != 0) level.push_back(Candidate{});
    std::vector<Candidate> next(level.size() / 2);
    for (std::size_t i = 0; i < next.size(); ++i) {
      const Candidate& older = level[2 * i];
      const Candidate& younger = level[2 * i + 1];
      if (older.hit) {
        next[i] = older;
      } else if (younger.hit) {
        next[i] = younger;
      } else {
        next[i] = Candidate{};
      }
    }
    level = std::move(next);
  }

  if (level.empty() || !level[0].hit) return ArrayMatch{};
  return ArrayMatch{true, level[0].location, level[0].cookie};
}

ArrayMatch ReferenceAlpuArray::match_and_delete(const Probe& probe) {
  const ArrayMatch m = match(probe);
  if (m.hit) delete_at(m.location);
  return m;
}

void ReferenceAlpuArray::delete_at(std::size_t location) {
  ALPU_ASSERT(location < occupancy_, "delete past the valid prefix");
  // Broadcast match location: every younger cell shifts one slot toward
  // the high-priority end; the vacated slot at the tail is invalidated.
  for (std::size_t i = location; i + 1 < occupancy_; ++i) {
    cells_[i] = cells_[i + 1];
  }
  cells_[occupancy_ - 1] = Cell{};
  --occupancy_;
}

void ReferenceAlpuArray::reset() {
  for (Cell& c : cells_) c = Cell{};
  occupancy_ = 0;
}

std::size_t ReferenceAlpuArray::invalidate_matching(const Probe& selector) {
  // Broadcast compare, then compact survivors toward the high-priority
  // end, preserving their relative order.  The sweep always takes its
  // don't-care mask from the SELECTOR, whatever the unit's flavour.
  const auto selected = [&](const Cell& c) {
    return c.valid &&
           ((c.bits ^ selector.bits) & ~selector.mask & significant_mask_) ==
               0;
  };
  std::size_t keep = 0;
  for (std::size_t i = 0; i < occupancy_; ++i) {
    if (!selected(cells_[i])) {
      if (keep != i) cells_[keep] = cells_[i];
      ++keep;
    }
  }
  const std::size_t removed = occupancy_ - keep;
  for (std::size_t i = keep; i < occupancy_; ++i) cells_[i] = Cell{};
  occupancy_ = keep;
  return removed;
}

}  // namespace alpu::hw
