// Retained reference implementation of the associative match array.
//
// This is the original cell-at-a-time AlpuArray (an array of `Cell`
// structs walked with branchy per-cell loops), kept verbatim as the
// executable specification after the production engine moved to the
// zero-allocation struct-of-arrays layout in array.hpp.  It exists for
// exactly one purpose: differential testing.  `tests/test_alpu_fuzz.cpp`
// drives both implementations with identical random operation streams
// and requires identical answers — the same technique the RTL model uses
// against the idealized array.
//
// Do not use this class in models or benchmarks; it is deliberately the
// slow, obvious version.
#pragma once

#include <cstddef>
#include <vector>

#include "alpu/array.hpp"
#include "alpu/types.hpp"

namespace alpu::hw {

class ReferenceAlpuArray {
 public:
  ReferenceAlpuArray(AlpuFlavor flavor, std::size_t total_cells,
                     std::size_t block_size,
                     MatchWord significant_mask = match::kFullMask);

  AlpuFlavor flavor() const { return flavor_; }
  std::size_t capacity() const { return cells_.size(); }
  std::size_t block_size() const { return block_size_; }
  std::size_t occupancy() const { return occupancy_; }
  std::size_t free_slots() const { return capacity() - occupancy_; }
  bool full() const { return occupancy_ == capacity(); }
  bool empty() const { return occupancy_ == 0; }

  [[nodiscard]] bool insert(MatchWord bits, MatchWord mask, Cookie cookie);
  ArrayMatch match(const Probe& probe) const;
  ArrayMatch match_tree(const Probe& probe) const;
  ArrayMatch match_and_delete(const Probe& probe);
  void reset();
  std::size_t invalidate_matching(const Probe& selector);

  MatchWord significant_mask() const { return significant_mask_; }
  const Cell& cell(std::size_t i) const { return cells_[i]; }

 private:
  bool cell_matches(const Cell& cell, const Probe& probe) const;
  void delete_at(std::size_t location);

  AlpuFlavor flavor_;
  std::size_t block_size_;
  MatchWord significant_mask_;
  std::vector<Cell> cells_;
  std::size_t occupancy_ = 0;
};

}  // namespace alpu::hw
