// Register-transfer-level model of the ALPU datapath (Figure 2).
//
// The functional AlpuArray treats the array as an always-compacted list;
// the real hardware is a chain of cells with per-cycle movement, and the
// paper spends a footnote on the consequence: HOLES.  "Holes can occur
// during inserts if there is time between new elements being inserted.
// Holes do not occur on deletion because all data below the deletion
// point is shifted upward as part of the delete." (Section III-B.)
//
// This model advances one clock edge at a time:
//
//   * data enters at cell 0 (the "left"); age increases to the right,
//     and the right-most matching cell is the oldest = correct match;
//   * each cycle, a cell's data moves one slot rightward when "space is
//     available" above it — defined, as in the prototype, as: the next
//     cell in the same block is empty, or the cell is the top of its
//     block and the FIRST cell of the next block is empty (the paper's
//     timing-friendly weak definition);
//   * a delete (completed match) broadcasts the match location; cells at
//     and below it shift up by one in that same cycle, leaving no hole;
//   * an insert writes cell 0, which must be empty (the control logic
//     guarantees it by spacing inserts and tracking free space).
//
// It exists for verification: property tests drive this model and the
// idealized AlpuArray with identical stimulus and require identical
// match results, and check the hole-dynamics claims directly.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "alpu/array.hpp"  // Cell, ArrayMatch
#include "alpu/types.hpp"

namespace alpu::hw {

class RtlAlpu {
 public:
  RtlAlpu(AlpuFlavor flavor, std::size_t total_cells, std::size_t block_size,
          MatchWord significant_mask = match::kFullMask);

  std::size_t capacity() const { return cells_.size(); }
  std::size_t block_size() const { return block_size_; }

  /// Number of valid cells (may be scattered across holes).
  std::size_t occupancy() const;

  /// True if cell 0 is free so an insert may be issued this cycle.
  bool can_insert() const { return !cells_[0].valid; }

  /// Combinational probe of the current cell state: the OLDEST
  /// (right-most) matching valid cell.  Does not modify state.
  ArrayMatch match(const Probe& probe) const;

  /// Advance one clock edge: optionally insert at cell 0, optionally
  /// complete a match-delete at `delete_location` (as returned by
  /// match() THIS cycle), and let the compaction network move data.
  /// Returns false if an insert was requested but cell 0 was occupied
  /// (a control-logic violation; nothing is written).
  bool step(const std::optional<Cell>& insert,
            const std::optional<std::size_t>& delete_location);

  /// Count of empty slots strictly between valid cells (the holes).
  std::size_t holes() const;

  /// True when no cell can move: stepping without insert/delete would
  /// change nothing (compaction has converged).
  bool quiescent() const;

  /// Direct cell inspection for tests.
  const Cell& cell(std::size_t i) const { return cells_[i]; }

  /// Clear everything (RESET).
  void reset();

 private:
  bool cell_matches(const Cell& cell, const Probe& probe) const;
  /// "Space available" for the data in cell i to move to cell i+1.
  bool can_shift_right(std::size_t i, const std::vector<Cell>& snapshot) const;

  AlpuFlavor flavor_;
  std::size_t block_size_;
  MatchWord significant_mask_;
  std::vector<Cell> cells_;  ///< index 0 = youngest ("left")
};

}  // namespace alpu::hw
