// Stage-level pipelined ALPU (Section V-D), on the RTL datapath.
//
// The transaction-level `Alpu` charges whole-operation latencies against
// an idealized array.  This model executes the actual pipeline:
//
//   stage 1   fan out the probe to the cell blocks (registered copies)
//   stage 2   every cell compares; match bits latch
//   stage 3   intra-block priority muxing
//   stage 4   cross-block priority reduction (1 cycle, 2 when >= 16
//             blocks — the Tables IV/V latency split)
//   stage 5   fan out the delete-location broadcast
//   stage 6   delete the matched cell (younger cells shift up)
//
// with the RtlAlpu providing the storage: inserts physically enter at
// cell 0 and drift toward the old end, so insert throughput shows the
// real block-boundary bubbles, and compaction proceeds in the
// background on every idle cycle.
//
// The Figure-3 control (insert mode, held failures, command legality)
// matches `Alpu` exactly; the differential test drives both models with
// identical stimulus and requires identical response streams.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "alpu/device.hpp"
#include "alpu/rtl.hpp"
#include "alpu/types.hpp"
#include "common/fifo.hpp"
#include "sim/clock.hpp"
#include "sim/engine.hpp"

namespace alpu::hw {

struct PipelinedAlpuConfig {
  AlpuFlavor flavor = AlpuFlavor::kPostedReceive;
  std::size_t total_cells = 256;
  std::size_t block_size = 16;
  common::ClockPeriod clock = common::ClockPeriod::from_mhz(500);
  MatchWord significant_mask = match::kFullMask;
  std::size_t header_fifo_depth = 64;
  std::size_t command_fifo_depth = 64;
  std::size_t result_fifo_depth = 64;
  /// See AlpuConfig::assert_on_insert_drop.
  bool assert_on_insert_drop = false;
};

struct PipelinedAlpuStats {
  std::uint64_t probes_accepted = 0;
  std::uint64_t match_successes = 0;
  std::uint64_t match_failures = 0;
  std::uint64_t held_retries = 0;
  std::uint64_t inserts = 0;
  std::uint64_t inserts_dropped = 0;  ///< inserts past capacity (protocol violation)
  std::uint64_t insert_bubbles = 0;  ///< cycles stalled on cell-0 pressure
  std::uint64_t commands_discarded = 0;
  std::uint64_t resets = 0;
  std::uint64_t cycles = 0;
};

class PipelinedAlpu : public sim::Component, public AlpuDevice {
 public:
  PipelinedAlpu(sim::Engine& engine, std::string name,
                const PipelinedAlpuConfig& config);

  [[nodiscard]] bool push_probe(const Probe& probe) override;
  [[nodiscard]] bool push_command(const Command& cmd) override;
  std::optional<Response> pop_result() override;
  bool result_available() const override { return !result_fifo_.empty(); }
  std::size_t capacity() const override { return rtl_.capacity(); }
  std::size_t occupancy() const override { return rtl_.occupancy(); }

  const RtlAlpu& datapath() const { return rtl_; }
  const PipelinedAlpuStats& stats() const { return stats_; }
  bool in_insert_mode() const { return state_ == State::kInsertMode; }

  /// Pipeline depth for a match in this configuration (6 or 7).
  unsigned match_stages() const { return 5 + cross_block_cycles_; }

 private:
  enum class State : std::uint8_t { kMatch, kReadCommand, kInsertMode };
  enum class Op : std::uint8_t { kNone, kMatch, kInsert, kDecode };

  bool tick();
  bool start_next();
  void finish_match();
  void decode(const Command& cmd);
  void emit(Response r);

  PipelinedAlpuConfig config_;
  RtlAlpu rtl_;
  sim::Clock clock_;
  unsigned cross_block_cycles_;

  common::BoundedFifo<Probe> header_fifo_;
  common::BoundedFifo<Command> command_fifo_;
  common::BoundedFifo<Response> result_fifo_;

  State state_ = State::kMatch;
  Op op_ = Op::kNone;
  unsigned stage_left_ = 0;

  Probe current_probe_{};
  /// Latched at the compare stage (the architectural match point).
  ArrayMatch latched_match_{};
  std::optional<Cell> pending_insert_;
  std::optional<Probe> held_probe_;
  bool retry_pending_ = false;

  PipelinedAlpuStats stats_;
};

}  // namespace alpu::hw
