// alpusim — command-line driver for the simulated machine.
//
// One binary to run any of the calibrated scenarios with explicit
// parameters, for exploration beyond the canned benchmark sweeps:
//
//   alpusim preposted  --mode alpu128 --length 300 --fraction 0.5
//   alpusim unexpected --mode baseline --length 200 --bytes 1024
//   alpusim pingpong   --mode alpu256 --bytes 4096 --iterations 16
//   alpusim msgrate    --mode alpu128 --length 100 --burst 64
//   alpusim fpga       --cells 256 --block 16 --flavor posted
//   alpusim preposted  --length 300 --report      # dump machine state
//   alpusim sweep      --figure 5 --jobs 8        # parallel figure CSV
//
// Output is a small key=value block (machine-parsable) plus optional
// full component tables with --report.  `sweep` regenerates a whole
// figure surface on a thread pool (--jobs N, default
// hardware_concurrency); its CSV is byte-identical at every job count.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "alpu/array.hpp"
#include "check/checker.hpp"
#include "check/flow.hpp"
#if ALPU_AUDIT
#include "check/audit.hpp"
#endif
#include "common/flags.hpp"
#include "common/log.hpp"
#include "fpga/area_model.hpp"
#include "workload/chaos.hpp"
#include "workload/report.hpp"
#include "workload/scenarios.hpp"
#include "workload/sweep.hpp"

namespace {

using namespace alpu;
using workload::NicMode;

int usage() {
  std::fprintf(stderr,
               "usage: alpusim <preposted|unexpected|pingpong|msgrate|fpga"
               "|sweep|check|chaos|audit>\n"
               "               [--mode baseline|alpu128|alpu256] [--length N]\n"
               "               [--fraction F] [--bytes N] [--iterations N]"
               " [--burst N] [--threshold N]\n"
               "               [--minbatch N] [--alpu-model"
               " transaction|pipelined]\n"
               "               [--cells N] [--block N] [--width N]"
               " [--flavor posted|unexpected] [--report]\n"
               "               [--figure 5|6] [--jobs N] [--quick]"
               " [--verbose]   (sweep mode)\n"
               "               [--shards N]   (conservative-parallel engine"
               " shards per simulation;\n"
               "                               results byte-identical at"
               " any count)\n"
               "               [--depth N] [--impl array|reference|alpu"
               "|pipelined|all]\n"
               "               [--inject-compaction-bug] [--flow]"
               "   (check mode; --flow model-checks\n"
               "                               the eager flow-control"
               " spec)\n"
               "               [--faults]   (check mode: add deterministic"
               " bit corruption to the\n"
               "                               alphabet; the spec demands"
               " parity detection + recovery)\n"
               "               [--seu-rate R] [--seu-seed S]"
               " [--scrub-interval-us N]\n"
               "                               (sweep/chaos: ALPU SEU"
               " injection, parity planes,\n"
               "                               background scrub)\n"
               "               [--inject-silent-flip]   (check/chaos"
               " must-fail hook: one flip\n"
               "                               behind the parity layer's"
               " back)\n"
               "               [--drop R] [--dup R] [--reorder R]"
               " [--corrupt R] [--ranks N]\n"
               "               [--per-pair N] [--seeds N] [--fault-seed S]\n"
               "               [--inject-lookahead-violation]"
               "   (chaos mode)\n"
               "               [--overload] [--pool-bytes N] [--slots N]"
               "   (chaos incast overload\n"
               "                               against a finite per-NIC"
               " eager budget; extended CSV)\n"
               "               [--rel-max-retries N] [--rel-base-timeout-us"
               " N] [--rel-max-timeout-us N]\n"
               "               [--rel-reorder-window N] [--rel-rnr-hint-us"
               " N] [--rel-demote-after N]\n"
               "               [--shards A,B]"
               "   (audit mode: divergence triage between two\n"
               "                               shard counts;"
               " needs -DALPU_AUDIT=ON)\n");
  return 2;
}

/// Reliability-sublayer knobs shared by the chaos and scenario paths.
/// Returns true when any flag was given (the scenario path uses that to
/// enable the sublayer the knobs configure).
bool apply_reliability_flags(const common::Flags& flags,
                             nic::ReliabilityConfig* rel) {
  bool any = false;
  if (flags.has("rel-max-retries")) {
    rel->max_retries =
        static_cast<unsigned>(flags.get_int("rel-max-retries", 12));
    any = true;
  }
  if (flags.has("rel-base-timeout-us")) {
    rel->base_timeout_ps = static_cast<common::TimePs>(
        flags.get_int("rel-base-timeout-us", 60) * 1'000'000);
    any = true;
  }
  if (flags.has("rel-max-timeout-us")) {
    rel->max_timeout_ps = static_cast<common::TimePs>(
        flags.get_int("rel-max-timeout-us", 2'000) * 1'000'000);
    any = true;
  }
  if (flags.has("rel-reorder-window")) {
    rel->reorder_window =
        static_cast<std::size_t>(flags.get_int("rel-reorder-window", 64));
    any = true;
  }
  if (flags.has("rel-rnr-hint-us")) {
    rel->rnr_hint_us =
        static_cast<std::uint32_t>(flags.get_int("rel-rnr-hint-us", 20));
    any = true;
  }
  if (flags.has("rel-demote-after")) {
    rel->rnr_demote_after =
        static_cast<unsigned>(flags.get_int("rel-demote-after", 2));
    any = true;
  }
  return any;
}

/// ALPU transient-fault knobs shared by the sweep and chaos paths.
/// Returns true when the resulting config actually installs the model
/// (rate or scrub nonzero) — zero-rate runs must stay byte-identical to
/// flag-free ones, so callers gate all SEU output on this.
bool apply_seu_flags(const common::Flags& flags, hw::SeuConfig* seu) {
  if (flags.has("seu-rate")) {
    seu->rate = flags.get_double("seu-rate", 0.0);
  }
  if (flags.has("seu-seed")) {
    seu->seed =
        static_cast<std::uint64_t>(flags.get_int("seu-seed", 0x5eed));
  }
  if (flags.has("scrub-interval-us")) {
    seu->scrub_interval_ps = static_cast<common::TimePs>(
        flags.get_int("scrub-interval-us", 0) * 1'000'000);
  }
  return seu->any();
}

/// `alpusim check --flow`: bounded-exhaustive check of the eager
/// flow-control spec (budgets, RNR NACKs, credits, demotion).
int run_flow_check(const common::Flags& flags) {
  check::FlowCheckOptions opt;
  opt.depth = static_cast<std::size_t>(flags.get_int("depth", 7));
  if (flags.has("pool-bytes")) {
    opt.config.pool_bytes =
        static_cast<std::uint32_t>(flags.get_int("pool-bytes", 4096));
  }
  if (flags.has("slots")) {
    opt.config.slots =
        static_cast<std::uint32_t>(flags.get_int("slots", 2));
  }
  const check::FlowCheckResult r = check::check_flow(opt);
  std::printf("check flow depth=%zu pool=%u slots=%u sequences=%llu "
              "ops=%llu %s\n",
              opt.depth, opt.config.pool_bytes, opt.config.slots,
              static_cast<unsigned long long>(r.sequences),
              static_cast<unsigned long long>(r.ops),
              r.ok ? "PASS" : "FAIL");
  if (!r.ok) std::printf("%s\n", r.counterexample.c_str());
  return r.ok ? 0 : 1;
}

/// `alpusim check`: bounded model check of the ALPU implementations
/// against the executable protocol spec (src/check/).  Exits non-zero
/// on the first divergence, printing the minimal counterexample.
int run_check(const common::Flags& flags) {
  if (flags.get_bool("flow")) {
    return run_flow_check(flags);
  }
  check::CheckOptions opt;
  opt.depth = static_cast<std::size_t>(flags.get_int("depth", 6));
  opt.cells = static_cast<std::size_t>(flags.get_int("cells", 4));
  opt.block = static_cast<std::size_t>(flags.get_int("block", 2));
  opt.faults = flags.get_bool("faults");

  std::vector<check::ImplKind> impls;
  const std::string impl = flags.get("impl", "all");
  if (impl == "array" || impl == "all") {
    impls.push_back(check::ImplKind::kArray);
  }
  if (impl == "reference" || impl == "all") {
    impls.push_back(check::ImplKind::kReference);
  }
  if (impl == "alpu" || impl == "all") {
    impls.push_back(check::ImplKind::kTransaction);
  }
  if (impl == "pipelined" || impl == "all") {
    impls.push_back(check::ImplKind::kPipelined);
  }
  if (impls.empty()) {
    std::fprintf(stderr, "unknown --impl\n");
    return 2;
  }

  std::vector<hw::AlpuFlavor> flavors;
  const std::string flavor = flags.get("flavor", "both");
  if (flavor == "posted" || flavor == "both") {
    flavors.push_back(hw::AlpuFlavor::kPostedReceive);
  }
  if (flavor == "unexpected" || flavor == "both") {
    flavors.push_back(hw::AlpuFlavor::kUnexpected);
  }
  if (flavors.empty()) {
    std::fprintf(stderr, "unknown --flavor\n");
    return 2;
  }

  // Demonstration/self-test hook: plant the classic compaction
  // off-by-one in AlpuArray and watch the checker pin it down.
  hw::testing::inject_compaction_off_by_one =
      flags.get_bool("inject-compaction-bug");
  // Must-fail teeth for the fault model: one bit flip behind the parity
  // layer's back on the next insert.  The checker must produce a
  // counterexample — a clean PASS here means the detection is toothless.
  if (flags.get_bool("inject-silent-flip")) {
    hw::testing::inject_silent_flip.store(true, std::memory_order_relaxed);
  }

  bool all_ok = true;
  for (check::ImplKind kind : impls) {
    for (hw::AlpuFlavor f : flavors) {
      const check::CheckResult r = check::check_impl(kind, f, opt);
      std::printf("check impl=%s flavor=%s depth=%zu cells=%zu "
                  "sequences=%llu ops=%llu %s\n",
                  check::to_string(kind), check::to_string(f), opt.depth,
                  opt.cells, static_cast<unsigned long long>(r.sequences),
                  static_cast<unsigned long long>(r.ops_applied),
                  r.ok ? "PASS" : "FAIL");
      if (!r.ok) {
        std::printf("%s", check::format_counterexample(r).c_str());
        all_ok = false;
      }
    }
  }
  hw::testing::inject_compaction_off_by_one = false;
  hw::testing::inject_silent_flip.store(false, std::memory_order_relaxed);
  return all_ok ? 0 : 1;
}

NicMode mode_of(const std::string& name, bool* ok) {
  *ok = true;
  if (name == "baseline") return NicMode::kBaseline;
  if (name == "alpu128") return NicMode::kAlpu128;
  if (name == "alpu256") return NicMode::kAlpu256;
  *ok = false;
  return NicMode::kBaseline;
}

/// `--verbose` companion output: aggregate probe-level engine counters
/// over every data point of the sweep.  Printed to stderr so the CSV on
/// stdout stays byte-identical with and without the flag.
void print_counters(const common::MatchCounters& c, std::size_t points) {
  std::fprintf(stderr, "points=%zu\n", points);
  std::fprintf(stderr, "match_probes=%llu\n",
               static_cast<unsigned long long>(c.probes));
  std::fprintf(stderr, "match_cells_scanned=%llu\n",
               static_cast<unsigned long long>(c.cells_scanned));
  std::fprintf(stderr, "match_compaction_moves=%llu\n",
               static_cast<unsigned long long>(c.compaction_moves));
  std::fprintf(stderr, "match_inserts_dropped=%llu\n",
               static_cast<unsigned long long>(c.inserts_dropped));
}

/// Robustness-path totals for `sweep --verbose` (all zero on a clean
/// fault-free sweep — anything else means the figures were produced on
/// a degraded machine and should not be trusted as calibration data).
void print_robustness_counters(
    const std::vector<workload::LatencyResult>& results) {
  std::uint64_t faults = 0, retx = 0, rejects = 0, resets = 0, dead = 0;
  std::uint64_t peak_depth = 0, peak_pool = 0, peak_slots = 0;
  std::uint64_t seu = 0, parity = 0, scrubs = 0, rebuilds = 0;
  for (const auto& r : results) {
    faults += r.net_faults_injected;
    retx += r.retransmits;
    rejects += r.alpu_probe_rejections;
    resets += r.alpu_fallback_resets;
    dead += r.link_failures;
    seu += r.seu_injected;
    parity += r.parity_faults;
    scrubs += r.scrub_sweeps;
    rebuilds += r.rebuilds;
    peak_depth = std::max(peak_depth, r.peak_unexpected_depth);
    peak_pool = std::max(peak_pool, r.peak_eager_pool_bytes);
    peak_slots = std::max(peak_slots, r.peak_unexpected_slots);
  }
  std::fprintf(stderr, "net_faults_injected=%llu\n",
               static_cast<unsigned long long>(faults));
  std::fprintf(stderr, "reliability_retransmits=%llu\n",
               static_cast<unsigned long long>(retx));
  std::fprintf(stderr, "alpu_probe_rejections=%llu\n",
               static_cast<unsigned long long>(rejects));
  std::fprintf(stderr, "alpu_fallback_resets=%llu\n",
               static_cast<unsigned long long>(resets));
  std::fprintf(stderr, "link_failures=%llu\n",
               static_cast<unsigned long long>(dead));
  // ALPU transient-fault totals (all zero unless --seu-rate or
  // --scrub-interval-us configured a fault model for the sweep).
  std::fprintf(stderr, "seu_injected=%llu\n",
               static_cast<unsigned long long>(seu));
  std::fprintf(stderr, "parity_faults=%llu\n",
               static_cast<unsigned long long>(parity));
  std::fprintf(stderr, "scrub_sweeps=%llu\n",
               static_cast<unsigned long long>(scrubs));
  std::fprintf(stderr, "rebuilds=%llu\n",
               static_cast<unsigned long long>(rebuilds));
  // Eager-resource high-water marks across the sweep (stats-only
  // tracking: these figures run with an unlimited budget).
  std::fprintf(stderr, "peak_unexpected_depth=%llu\n",
               static_cast<unsigned long long>(peak_depth));
  std::fprintf(stderr, "peak_eager_pool_bytes=%llu\n",
               static_cast<unsigned long long>(peak_pool));
  std::fprintf(stderr, "peak_unexpected_slots=%llu\n",
               static_cast<unsigned long long>(peak_slots));
}

/// `alpusim sweep`: regenerate a figure surface on the parallel sweep
/// pool and print it as CSV.
int run_sweep(const common::Flags& flags) {
  workload::SweepOptions sweep;
  sweep.jobs = static_cast<int>(flags.get_int("jobs", 0));
  sweep.shards = static_cast<int>(flags.get_int("shards", 1));
  apply_seu_flags(flags, &sweep.seu);
  const bool quick = flags.get_bool("quick");
  const bool verbose = flags.get_bool("verbose");
  const std::int64_t figure = flags.get_int("figure", 5);

  if (figure == 5) {
    const auto rows = workload::run_preposted_surface(
        workload::fig5_surface_points(quick), sweep);
    std::printf("%s", workload::surface_csv(rows).c_str());
    if (verbose) {
      common::MatchCounters total;
      std::vector<workload::LatencyResult> results;
      results.reserve(rows.size());
      for (const auto& row : rows) {
        total += row.result.match_counters;
        results.push_back(row.result);
      }
      print_counters(total, rows.size());
      print_robustness_counters(results);
    }
    return 0;
  }
  if (figure == 6) {
    const std::vector<std::size_t> lengths =
        quick ? std::vector<std::size_t>{0, 1, 5, 10, 20, 35, 50, 70, 100,
                                         150, 200, 300}
              : std::vector<std::size_t>{0,   1,   5,   10,  20,  35,
                                         50,  70,  100, 128, 150, 200,
                                         256, 300, 400, 500, 600};
    struct Point {
      NicMode mode;
      std::size_t length;
    };
    std::vector<Point> points;
    for (std::size_t len : lengths) {
      for (NicMode mode : {NicMode::kBaseline, NicMode::kAlpu128,
                           NicMode::kAlpu256}) {
        points.push_back({mode, len});
      }
    }
    const std::vector<workload::LatencyResult> results = workload::sweep_map(
        points,
        [&sweep](const Point& pt) {
          workload::UnexpectedParams p;
          p.mode = pt.mode;
          p.queue_length = pt.length;
          p.shards = sweep.shards;
          if (sweep.seu.any()) {
            mpi::SystemConfig sys = workload::make_system_config(pt.mode);
            sys.nic.seu = sweep.seu;
            p.system = sys;
          }
          return workload::run_unexpected(p);
        },
        sweep);
    std::printf("queue_length,baseline_ns,alpu128_ns,alpu256_ns\n");
    for (std::size_t i = 0; i < lengths.size(); ++i) {
      std::printf("%zu,%.1f,%.1f,%.1f\n", lengths[i],
                  common::to_ns(results[i * 3].latency),
                  common::to_ns(results[i * 3 + 1].latency),
                  common::to_ns(results[i * 3 + 2].latency));
    }
    if (verbose) {
      common::MatchCounters total;
      for (const auto& r : results) total += r.match_counters;
      print_counters(total, results.size());
      print_robustness_counters(results);
    }
    return 0;
  }
  std::fprintf(stderr, "unknown --figure (5 or 6)\n");
  return 2;
}

/// `alpusim chaos`: the fault-rate soak.  Sweeps drop rates (default
/// {0, 1e-3, 1e-2}; override with --drop) across --seeds traffic plans
/// on the parallel sweep pool, runs the all-to-all chaos workload at
/// each point, and FAILs unless every point delivers every MPI message
/// exactly once, in per-pair order, with all queues drained and no link
/// declared dead.  Duplication/reorder/corruption rates ride along at
/// half the drop rate each unless given explicitly.
int run_chaos(const common::Flags& flags) {
  if (flags.get_bool("debug")) {
    common::set_log_level(common::LogLevel::kDebug);
  }
  workload::SweepOptions sweep;
  sweep.jobs = static_cast<int>(flags.get_int("jobs", 0));
  sweep.shards = static_cast<int>(flags.get_int("shards", 1));

  bool mode_ok = true;
  const NicMode mode = mode_of(flags.get("mode", "alpu256"), &mode_ok);
  if (!mode_ok) {
    std::fprintf(stderr, "unknown --mode\n");
    return 2;
  }
  // Incast overload: every rank floods rank 0 with eager traffic while
  // rank 0 drains slowly, against a finite per-NIC eager budget.  The
  // defaults pick a budget far below the offered load so the run leans
  // on the full RNR-NACK / backoff / credit / demotion machinery.
  const bool overload = flags.get_bool("overload");
  const int ranks =
      static_cast<int>(flags.get_int("ranks", overload ? 9 : 4));
  const int per_pair = static_cast<int>(flags.get_int("per-pair", 8));
  const int nseeds = static_cast<int>(flags.get_int("seeds", 2));
  const auto fault_seed =
      static_cast<std::uint64_t>(flags.get_int("fault-seed", 0x5eed));
  const auto pool_bytes = static_cast<std::uint64_t>(
      flags.get_int("pool-bytes", overload ? 32'768 : 0));
  const auto slots = static_cast<std::uint32_t>(
      flags.get_int("slots", overload ? 16 : 0));
  // ALPU transient faults compound with the network faults: the same
  // soak must stay exactly-once / in-order / drained while the parity +
  // scrub + rebuild machinery absorbs bit flips underneath it.
  hw::SeuConfig seu;
  const bool seu_on = apply_seu_flags(flags, &seu);

  std::vector<double> rates;
  if (flags.has("drop")) {
    rates.push_back(flags.get_double("drop", 0.0));
  } else if (overload) {
    rates = {0.0, 1e-2};
  } else {
    rates = {0.0, 1e-3, 1e-2};
  }

  struct Point {
    double rate;
    std::uint64_t seed;
  };
  std::vector<Point> points;
  for (double rate : rates) {
    for (int s = 0; s < nseeds; ++s) {
      points.push_back({rate, static_cast<std::uint64_t>(s + 1)});
    }
  }

  // Must-fail hook for the audit CI job: back-date one cross-shard
  // delivery past the conservative lookahead bound.  The determinism
  // auditor (ALPU_AUDIT builds) must abort with a provenance chain.
  if (flags.get_bool("inject-lookahead-violation")) {
    hw::testing::inject_lookahead_violation.store(true,
                                                  std::memory_order_relaxed);
  }
  // Must-fail hook for the SEU CI job: one flip behind the parity
  // layer's back.  Run with --jobs 1 --shards 1 and no --seu flags; the
  // corrupted entry mismatches a receive, so the soak must FAIL — a
  // PASS means silent corruption got through undetected.
  if (flags.get_bool("inject-silent-flip")) {
    hw::testing::inject_silent_flip.store(true, std::memory_order_relaxed);
  }

  const std::vector<workload::ChaosResult> results = workload::sweep_map(
      points,
      [&](const Point& pt) {
        workload::ChaosParams p;
        p.mode = mode;
        p.ranks = ranks;
        p.per_pair = per_pair;
        p.seed = pt.seed;
        p.faults.drop_rate = pt.rate;
        p.faults.dup_rate = flags.get_double("dup", pt.rate / 2.0);
        p.faults.reorder_rate = flags.get_double("reorder", pt.rate / 2.0);
        p.faults.corrupt_rate = flags.get_double("corrupt", pt.rate / 2.0);
        p.faults.seed = fault_seed + pt.seed;
        p.seu = seu;
        p.shards = sweep.shards;
        p.overload = overload;
        p.eager_pool_bytes = pool_bytes;
        p.unexpected_slots = slots;
        apply_reliability_flags(flags, &p.reliability);
        return workload::run_chaos(p);
      },
      sweep);

  // The default CSV is a pinned interface (CI diffs it across --jobs);
  // the flow-control columns only appear when a budget is in play, and
  // the SEU columns only when a fault model is actually installed — a
  // zero-rate run must be byte-identical to a flag-free one.
  const bool extended = overload || pool_bytes > 0 || slots > 0;
  std::printf(
      "drop_rate,seed,messages,sim_ms,drops,dups,reorders,corruptions,"
      "retransmits,timeouts,crc_drops,dup_drops,fallback_resets,%s%sok\n",
      extended ? "rnr_nacks,rnr_retries,credit_acks,demotions,"
                 "demoted_sends,peak_pool,peak_slots,peak_depth,stalls,"
               : "",
      seu_on ? "seu_injected,parity_faults,scrub_sweeps,rebuilds," : "");
  bool all_ok = true;
  std::uint64_t total_parity_faults = 0, total_rebuilds = 0;
  common::TimePs total_detect_latency = 0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    const workload::ChaosResult& r = results[i];
    all_ok = all_ok && r.ok();
    std::printf(
        "%g,%llu,%llu,%.3f,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,",
        points[i].rate, static_cast<unsigned long long>(points[i].seed),
        static_cast<unsigned long long>(r.messages),
        common::to_ns(r.sim_time) / 1e6,
        static_cast<unsigned long long>(r.net.faults_dropped),
        static_cast<unsigned long long>(r.net.faults_duplicated),
        static_cast<unsigned long long>(r.net.faults_reordered),
        static_cast<unsigned long long>(r.net.faults_corrupted),
        static_cast<unsigned long long>(r.reliability.retransmits),
        static_cast<unsigned long long>(r.reliability.timeouts),
        static_cast<unsigned long long>(r.reliability.crc_drops),
        static_cast<unsigned long long>(r.reliability.dup_drops),
        static_cast<unsigned long long>(r.fallback_resets));
    if (extended) {
      std::printf(
          "%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,",
          static_cast<unsigned long long>(r.reliability.rnr_nacks_tx),
          static_cast<unsigned long long>(r.reliability.rnr_retries),
          static_cast<unsigned long long>(r.reliability.credit_acks_tx),
          static_cast<unsigned long long>(r.demotions),
          static_cast<unsigned long long>(r.demoted_sends),
          static_cast<unsigned long long>(r.peak_pool_bytes),
          static_cast<unsigned long long>(r.peak_unexpected_slots),
          static_cast<unsigned long long>(r.peak_unexpected_depth),
          static_cast<unsigned long long>(r.stalls));
    }
    if (seu_on) {
      total_parity_faults += r.parity_faults;
      total_rebuilds += r.rebuilds;
      total_detect_latency += r.seu_detect_latency_ps;
      std::printf("%llu,%llu,%llu,%llu,",
                  static_cast<unsigned long long>(r.seu_injected),
                  static_cast<unsigned long long>(r.parity_faults),
                  static_cast<unsigned long long>(r.scrub_sweeps),
                  static_cast<unsigned long long>(r.rebuilds));
    }
    std::printf("%s\n", r.ok() ? "PASS" : "FAIL");
    if (!r.ok()) {
      std::fprintf(stderr,
                   "chaos FAIL at drop=%g seed=%llu: completed=%d "
                   "conserved=%d ordered=%d drained=%d link_failures=%llu "
                   "stalls=%llu peak_pool=%llu/%llu peak_slots=%llu/%llu\n",
                   points[i].rate,
                   static_cast<unsigned long long>(points[i].seed),
                   r.completed, r.conserved, r.ordered, r.drained,
                   static_cast<unsigned long long>(
                       r.reliability.link_failures),
                   static_cast<unsigned long long>(r.stalls),
                   static_cast<unsigned long long>(r.peak_pool_bytes),
                   static_cast<unsigned long long>(r.pool_budget),
                   static_cast<unsigned long long>(r.peak_unexpected_slots),
                   static_cast<unsigned long long>(r.slot_budget));
    }
  }
  // Teeth for the SEU soak: with a nonzero injection rate the grid must
  // actually have exercised the machinery — at least one detected parity
  // fault and at least one completed rebuild — or the "survived" verdict
  // proves nothing.
  if (seu.rate > 0.0 &&
      (total_parity_faults == 0 || total_rebuilds == 0)) {
    std::fprintf(stderr,
                 "chaos: SEU soak toothless — rate=%g yet "
                 "parity_faults=%llu rebuilds=%llu across the grid\n",
                 seu.rate,
                 static_cast<unsigned long long>(total_parity_faults),
                 static_cast<unsigned long long>(total_rebuilds));
    all_ok = false;
  }
  if (seu_on && total_parity_faults > 0) {
    // Mean injection-to-detection latency across the grid (stderr, so
    // the CSV interface is untouched) — the number the scrub-interval
    // study in EXPERIMENTS.md reports.
    std::fprintf(stderr, "seu_detect_latency_avg_us=%.2f\n",
                 common::to_ns(total_detect_latency) / 1e3 /
                     static_cast<double>(total_parity_faults));
  }
  std::fprintf(stderr, "chaos: %s (%zu points)\n", all_ok ? "PASS" : "FAIL",
               points.size());
  return all_ok ? 0 : 1;
}

/// `alpusim audit`: divergence triage.  Runs the same chaos workload at
/// two shard counts with the determinism auditor tracing per-window
/// multiset hashes, locates the first window where the traces disagree,
/// re-runs both sides with full event capture on that window, and prints
/// the minimal divergent event pair with both provenance chains.
/// Exit 0 = traces identical; 1 = divergence found (and localized);
/// 2 = usage / not an ALPU_AUDIT build.
#if ALPU_AUDIT
int run_audit(const common::Flags& flags) {
  unsigned shards_a = 0, shards_b = 0;
  const std::string spec = flags.get("shards", "1,2");
  if (std::sscanf(spec.c_str(), "%u,%u", &shards_a, &shards_b) != 2 ||
      shards_a == 0 || shards_b == 0) {
    std::fprintf(stderr, "audit: --shards wants two counts, e.g. 1,2\n");
    return 2;
  }

  bool mode_ok = true;
  workload::ChaosParams base;
  base.mode = mode_of(flags.get("mode", "alpu256"), &mode_ok);
  if (!mode_ok) {
    std::fprintf(stderr, "unknown --mode\n");
    return 2;
  }
  base.ranks = static_cast<int>(flags.get_int("ranks", 4));
  base.per_pair = static_cast<int>(flags.get_int("per-pair", 8));
  base.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const double rate = flags.get_double("drop", 0.0);
  base.faults.drop_rate = rate;
  base.faults.dup_rate = flags.get_double("dup", rate / 2.0);
  base.faults.reorder_rate = flags.get_double("reorder", rate / 2.0);
  base.faults.corrupt_rate = flags.get_double("corrupt", rate / 2.0);
  base.faults.seed =
      static_cast<std::uint64_t>(flags.get_int("fault-seed", 0x5eed));

  const auto run_traced = [&base](unsigned nshards, check::Auditor& auditor,
                                  std::uint64_t capture_window) {
    auditor.enable_trace();
    if (capture_window != 0) auditor.capture_window(capture_window);
    workload::ChaosParams p = base;
    p.shards = static_cast<int>(nshards);
    p.auditor = &auditor;
    return workload::run_chaos(p);
  };

  check::Auditor audit_a, audit_b;
  run_traced(shards_a, audit_a, 0);
  run_traced(shards_b, audit_b, 0);
  const check::AuditTrace& trace_a = audit_a.trace();
  const check::AuditTrace& trace_b = audit_b.trace();
  std::fprintf(stderr, "audit: shards=%u ran %zu windows, shards=%u ran %zu\n",
               shards_a, trace_a.size(), shards_b, trace_b.size());

  const std::ptrdiff_t win = check::first_divergent_window(trace_a, trace_b);
  if (win < 0) {
    std::printf("audit: PASS — %zu windows, traces identical at shards=%u "
                "and shards=%u\n",
                trace_a.size(), shards_a, shards_b);
    return 0;
  }

  // Window ids are 1-based and dense (one trace record per window), so
  // record index i is window i+1.
  const auto window_id = static_cast<std::uint64_t>(win) + 1;
  std::printf("audit: DIVERGENCE at window %llu\n",
              static_cast<unsigned long long>(window_id));
  const auto show_window = [](const char* tag, const check::AuditTrace& t,
                              std::ptrdiff_t i) {
    if (i < static_cast<std::ptrdiff_t>(t.size())) {
      const check::WindowRecord& w = t[static_cast<std::size_t>(i)];
      std::printf("  %s: window %llu [%llu, %llu) events=%llu "
                  "hash=%016llx\n",
                  tag, static_cast<unsigned long long>(w.window),
                  static_cast<unsigned long long>(w.start),
                  static_cast<unsigned long long>(w.end),
                  static_cast<unsigned long long>(w.events),
                  static_cast<unsigned long long>(w.hash));
    } else {
      std::printf("  %s: (run already drained — no such window)\n", tag);
    }
  };
  show_window("run A", trace_a, win);
  show_window("run B", trace_b, win);

  // Re-run both sides capturing every event in the divergent window,
  // then diff the canonically sorted captures for the first event pair
  // that disagrees on the partition-stable key (when, origin_when).
  check::Auditor cap_a, cap_b;
  run_traced(shards_a, cap_a, window_id);
  run_traced(shards_b, cap_b, window_id);
  const std::vector<check::CapturedEvent> events_a = cap_a.captured();
  const std::vector<check::CapturedEvent> events_b = cap_b.captured();
  const std::ptrdiff_t ev = check::first_divergent_event(events_a, events_b);
  if (ev < 0) {
    // Hash caught a multiset difference the capture diff cannot see
    // (e.g. same (when, origin_when) keys, different event counts per
    // key at the tail) — the window summary above is the answer.
    std::printf("  captures match on (when, origin_when); counts: A=%zu "
                "B=%zu\n",
                events_a.size(), events_b.size());
    return 1;
  }
  const auto show_event = [](const char* tag, check::Auditor& auditor,
                             const std::vector<check::CapturedEvent>& v,
                             std::ptrdiff_t i) {
    if (i < static_cast<std::ptrdiff_t>(v.size())) {
      const check::CapturedEvent& e = v[static_cast<std::size_t>(i)];
      std::printf("  %s event[%td]: %s\n", tag, i,
                  check::format_event(e).c_str());
      std::printf("%s", auditor.provenance_chain(e.stamp).c_str());
    } else {
      std::printf("  %s event[%td]: (absent — run executed fewer events "
                  "in this window)\n",
                  tag, i);
    }
  };
  std::printf("first divergent event pair (sorted by when, origin_when):\n");
  show_event("run A", cap_a, events_a, ev);
  show_event("run B", cap_b, events_b, ev);
  return 1;
}
#else   // !ALPU_AUDIT
int run_audit(const common::Flags&) {
  std::fprintf(stderr,
               "alpusim audit needs the determinism audit layer; rebuild "
               "with cmake -DALPU_AUDIT=ON\n");
  return 2;
}
#endif  // ALPU_AUDIT

void print_result(const workload::LatencyResult& r) {
  std::printf("latency_ns=%.1f\n", common::to_ns(r.latency));
  std::printf("sw_entries_walked=%llu\n",
              static_cast<unsigned long long>(r.sw_entries_walked));
  std::printf("alpu_hits=%llu\n",
              static_cast<unsigned long long>(r.alpu_hits));
  std::printf("alpu_misses=%llu\n",
              static_cast<unsigned long long>(r.alpu_misses));
  std::printf("l1_hit_rate=%.4f\n", r.l1_hit_rate);
  std::printf("total_sim_time_ns=%.1f\n", common::to_ns(r.total_sim_time));
}

}  // namespace

int main(int argc, char** argv) {
  const auto flags_opt = common::Flags::parse(argc, argv);
  if (!flags_opt.has_value() || flags_opt->positional().empty()) {
    return usage();
  }
  const common::Flags& flags = *flags_opt;
  const std::string scenario = flags.positional()[0];

  if (scenario == "sweep") {
    return run_sweep(flags);
  }
  if (scenario == "check") {
    return run_check(flags);
  }
  if (scenario == "chaos") {
    return run_chaos(flags);
  }
  if (scenario == "audit") {
    return run_audit(flags);
  }

  bool mode_ok = true;
  const NicMode mode = mode_of(flags.get("mode", "baseline"), &mode_ok);
  if (!mode_ok) {
    std::fprintf(stderr, "unknown --mode\n");
    return usage();
  }

  if (flags.get_bool("trace")) {
    common::set_log_level(common::LogLevel::kTrace);
  } else if (flags.get_bool("debug")) {
    common::set_log_level(common::LogLevel::kDebug);
  }

  auto system = workload::make_system_config(mode);
  if (flags.get("alpu-model", "transaction") == "pipelined") {
    system.nic.alpu_model = nic::AlpuModelKind::kPipelined;
  }
  if (flags.has("threshold")) {
    system.nic.alpu_policy.insert_threshold =
        static_cast<std::size_t>(flags.get_int("threshold", 0));
  }
  if (flags.has("minbatch")) {
    system.nic.alpu_policy.min_batch =
        static_cast<std::size_t>(flags.get_int("minbatch", 1));
  }
  // Reliability / flow-control knobs apply to the latency scenarios too
  // (e.g. measuring the cost of a tiny eager budget on a clean link).
  if (apply_reliability_flags(flags, &system.nic.reliability)) {
    system.nic.reliability.enabled = true;
  }
  if (flags.has("pool-bytes") || flags.has("slots")) {
    system.nic.eager_pool_bytes =
        static_cast<std::uint64_t>(flags.get_int("pool-bytes", 0));
    system.nic.unexpected_slots =
        static_cast<std::uint32_t>(flags.get_int("slots", 0));
    system.nic.reliability.enabled = true;
  }

  const int shards = static_cast<int>(flags.get_int("shards", 1));

  if (scenario == "preposted") {
    workload::PrepostedParams p;
    p.mode = mode;
    p.system = system;
    p.queue_length = static_cast<std::size_t>(flags.get_int("length", 0));
    p.fraction_traversed = flags.get_double("fraction", 1.0);
    p.message_bytes =
        static_cast<std::uint32_t>(flags.get_int("bytes", 0));
    p.iterations = static_cast<int>(flags.get_int("iterations", 1));
    p.shards = shards;
    print_result(workload::run_preposted(p));
  } else if (scenario == "unexpected") {
    workload::UnexpectedParams p;
    p.mode = mode;
    p.system = system;
    p.queue_length = static_cast<std::size_t>(flags.get_int("length", 0));
    p.message_bytes =
        static_cast<std::uint32_t>(flags.get_int("bytes", 0));
    p.shards = shards;
    print_result(workload::run_unexpected(p));
  } else if (scenario == "pingpong") {
    const common::TimePs t = workload::run_pingpong(
        mode, static_cast<std::uint32_t>(flags.get_int("bytes", 0)),
        static_cast<int>(flags.get_int("iterations", 8)));
    std::printf("half_rtt_ns=%.1f\n", common::to_ns(t));
  } else if (scenario == "msgrate") {
    workload::MessageRateParams p;
    p.mode = mode;
    p.system = system;
    p.queue_length = static_cast<std::size_t>(flags.get_int("length", 0));
    p.burst = static_cast<int>(flags.get_int("burst", 64));
    p.message_bytes =
        static_cast<std::uint32_t>(flags.get_int("bytes", 0));
    p.shards = shards;
    const common::TimePs gap = workload::run_message_rate(p);
    std::printf("gap_ns=%.1f\n", common::to_ns(gap));
    std::printf("mmsgs_per_s=%.3f\n", 1e3 / common::to_ns(gap));
  } else if (scenario == "fpga") {
    fpga::PrototypeParams p;
    p.total_cells = static_cast<std::size_t>(flags.get_int("cells", 256));
    p.block_size = static_cast<std::size_t>(flags.get_int("block", 16));
    p.match_width =
        static_cast<unsigned>(flags.get_int("width", 42));
    p.flavor = flags.get("flavor", "posted") == "unexpected"
                   ? hw::AlpuFlavor::kUnexpected
                   : hw::AlpuFlavor::kPostedReceive;
    const auto est = fpga::estimate(p);
    std::printf("luts=%llu\nffs=%llu\nslices=%llu\n",
                static_cast<unsigned long long>(est.luts),
                static_cast<unsigned long long>(est.flip_flops),
                static_cast<unsigned long long>(est.slices));
    std::printf("clock_mhz=%.1f\nasic_mhz=%.0f\npipeline=%u\n",
                est.clock_mhz, est.asic_clock_mhz, est.pipeline_latency);
  } else {
    return usage();
  }

  // --report reruns the scenario with the machine kept alive for a full
  // component dump (latency scenarios only).
  if (flags.get_bool("report") &&
      (scenario == "preposted" || scenario == "unexpected")) {
    // The scenario runners tear the machine down; run a fresh machine
    // with equivalent traffic and dump it.
    sim::Engine engine;
    mpi::Machine machine(engine, system);
    sim::ProcessPool pool(engine);
    const auto length =
        static_cast<std::size_t>(flags.get_int("length", 0));
    pool.spawn([](mpi::Machine& m, std::size_t n) -> sim::Process {
      for (std::size_t i = 0; i < n; ++i) {
        (void)m.rank(0).irecv(1, 1000, 0);
      }
      mpi::Request ping = m.rank(0).irecv(1, 7, 4096);
      co_await m.rank(0).send(1, 1, 0);
      co_await m.rank(0).wait(ping);
    }(machine, length));
    pool.spawn([](mpi::Machine& m) -> sim::Process {
      co_await m.rank(1).recv(0, 1, 0);
      co_await m.rank(1).send(0, 7, 64);
    }(machine));
    engine.run();
    workload::print_machine_report(machine);
  }
  return 0;
}
