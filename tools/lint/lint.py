#!/usr/bin/env python3
"""Project lint runner: rule-based static checks for the simulator.

Runs every registered rule (tools/lint/rules/) over the given source
trees.  Rules cover the determinism contract (no wall clocks, no hash
iteration, no ASLR-ordered containers), hot-path allocation discipline
(no raw new/delete, no std::function where EventCallback belongs, no
map-order-driven scheduling) and project conventions (ALPU_ASSERT, no
mutable statics in the sharded kernel).

Waive a finding with a comment on the flagged line or the comment block
above it:

    // lint: ok(rule-id) — justification
    // determinism: ok — legacy form, determinism-category rules only

Usage:
    lint.py [DIR|FILE ...]          lint (default: src/)
    lint.py --format json [...]     machine-readable findings
    lint.py --github [...]          GitHub annotation lines to stderr
    lint.py --list-rules            rule catalog
    lint.py --self-test             run each rule's embedded tests

Exit status: 0 clean (warnings allowed), 1 error findings, 2 usage or
self-test failure.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

if __package__ in (None, ""):
    # Invoked as a script: make `tools.lint` importable as a package.
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[2]))
    from tools.lint import framework, rules  # noqa: F401
else:
    from . import framework, rules  # noqa: F401


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="lint.py", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    parser.add_argument("--format", choices=["text", "json"],
                        default="text")
    parser.add_argument("--github", action="store_true",
                        help="also emit GitHub annotation lines to stderr")
    parser.add_argument("--list-rules", action="store_true")
    parser.add_argument("--self-test", action="store_true")
    args = parser.parse_args(argv[1:])

    if args.list_rules:
        for rule in framework.all_rules():
            print(f"{rule.id} [{rule.category}/{rule.severity}]")
            print(f"    {rule.description}")
        return 0

    if args.self_test:
        failures = framework.run_self_tests()
        for failure in failures:
            print(f"self-test FAIL: {failure}", file=sys.stderr)
        n = len(framework.all_rules())
        if failures:
            print(f"lint self-test: {len(failures)} failure(s) across "
                  f"{n} rules", file=sys.stderr)
            return 2
        print(f"lint self-test: all {n} rules pass", file=sys.stderr)
        return 0

    try:
        findings, files_scanned = framework.lint_paths(
            [pathlib.Path(p) for p in args.paths], framework.all_rules())
    except FileNotFoundError as e:
        print(f"lint: no such path: {e}", file=sys.stderr)
        return 2

    if args.format == "json":
        print(framework.render_json(findings, files_scanned))
    else:
        for finding in findings:
            print(finding.text())
    if args.github:
        for finding in findings:
            print(finding.github(), file=sys.stderr)

    errors = sum(1 for f in findings if f.severity == "error")
    warnings = len(findings) - errors
    print(f"lint: {errors} error(s), {warnings} warning(s) in "
          f"{files_scanned} files", file=sys.stderr)
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
