"""Project-convention rules.

These enforce repo-wide contracts that reviews keep re-litigating:
assertions must go through the contract layer (common/check.hpp), and
the sharded kernel must not grow mutable global state.
"""

from __future__ import annotations

import re
from typing import Iterator

from ..framework import Rule, SelfTestCase, register

# --- assert-style -----------------------------------------------------
#
# A plain assert() silently disappears under -DNDEBUG; the simulator's
# protocol invariants are load-bearing in every build and must use
# ALPU_ASSERT / ALPU_DEBUG_ASSERT / ALPU_INVARIANT (common/check.hpp),
# which also route through the swappable failure handler the tests and
# the determinism auditor rely on.  `static_assert` is fine.

RAW_ASSERT = re.compile(r"(?<![\w:.])assert\s*\(")
CASSERT_INCLUDE = re.compile(r"#\s*include\s*<(?:cassert|assert\.h)>")


def _check_assert_style(path, raw_lines, code_lines,
                        ctx) -> Iterator[tuple[int, str]]:
    del raw_lines, ctx
    if "src" not in path.parts:
        return
    for lineno, code in enumerate(code_lines, start=1):
        if RAW_ASSERT.search(code):
            yield lineno, ("raw assert() (vanishes under NDEBUG; use "
                           "ALPU_ASSERT / ALPU_DEBUG_ASSERT from "
                           "common/check.hpp)")
        elif CASSERT_INCLUDE.search(code):
            yield lineno, ("<cassert> include (the contract layer in "
                           "common/check.hpp replaces it)")


register(Rule(
    id="assert-style", category="project", severity="error",
    description="raw assert() in src/ — protocol invariants must survive "
                "NDEBUG and route through the contract layer",
    check=_check_assert_style,
    self_tests=[
        SelfTestCase("src/nic/x.cpp", "assert(ok && \"bad\");",
                     expect_hit=True),
        SelfTestCase("src/nic/x.cpp", "#include <cassert>",
                     expect_hit=True),
        SelfTestCase("src/nic/x.cpp", "ALPU_ASSERT(ok, \"bad\");",
                     expect_hit=False),
        SelfTestCase("src/nic/x.cpp", "static_assert(sizeof(T) == 8);",
                     expect_hit=False),
        SelfTestCase("tests/x.cpp", "assert(ok);", expect_hit=False),
    ]))


# --- mutable-static ---------------------------------------------------
#
# The sharded kernel runs N engines on N threads; a mutable static in
# src/sim or src/nic is shared state the window protocol does not
# order, i.e. a data race or a cross-shard determinism leak waiting to
# happen.  const/constexpr statics are fine; so are function-local
# static constants.  thread_local is flagged too (it is still hidden
# state that couples a result to which thread ran the shard) — waive it
# with the thread-confinement argument spelled out.

STATIC_DECL = re.compile(
    r"^\s*(?:inline\s+)?(?:static|thread_local)\b"
    r"(?:\s+(?:static|thread_local|inline))*\s+"
    r"(?!const\b|constexpr\b|consteval\b|constinit\b)")
LOOKS_LIKE_FUNCTION = re.compile(
    r"\w\s*\([^)]*$"                                   # params span lines
    r"|\w\s*\([^)]*\)(?:\s*(?:noexcept|const|override"  # trailing specifiers
    r"|final))*\s*(?:->[^;{]*)?[;{=]")
TARGET_DIRS = {"sim", "nic"}


def _check_mutable_static(path, raw_lines, code_lines,
                          ctx) -> Iterator[tuple[int, str]]:
    del raw_lines, ctx
    if not (TARGET_DIRS & set(path.parts)) or "src" not in path.parts:
        return
    for lineno, code in enumerate(code_lines, start=1):
        if not STATIC_DECL.search(code):
            continue
        # Function declarations/definitions ("static void f(...)") and
        # static member functions are not data.
        if LOOKS_LIKE_FUNCTION.search(code):
            continue
        yield lineno, ("mutable static in the sharded kernel (src/sim, "
                       "src/nic): unordered shared state across shard "
                       "threads")


register(Rule(
    id="mutable-static", category="project", severity="error",
    description="mutable static / thread_local data in src/sim or src/nic "
                "(the sharded kernel must not grow hidden shared state)",
    check=_check_mutable_static,
    self_tests=[
        SelfTestCase("src/sim/x.cpp", "static int counter = 0;",
                     expect_hit=True),
        SelfTestCase("src/sim/x.hpp",
                     "static thread_local inline void* lists_[17];",
                     expect_hit=True),
        SelfTestCase("src/sim/x.cpp", "static constexpr int kMax = 4;",
                     expect_hit=False),
        SelfTestCase("src/sim/x.cpp", "static const char* name();",
                     expect_hit=False),
        SelfTestCase("src/sim/x.cpp", "static void helper(int x) {",
                     expect_hit=False),
        SelfTestCase("src/sim/x.hpp",
                     "static void release(void* p, std::size_t n) noexcept {",
                     expect_hit=False),
        SelfTestCase("src/net/x.cpp", "static int counter = 0;",
                     expect_hit=False),
    ]))
