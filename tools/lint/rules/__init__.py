"""Rule modules register themselves on import."""

from . import determinism  # noqa: F401
from . import hotpath  # noqa: F401
from . import project  # noqa: F401
from . import robustness  # noqa: F401
