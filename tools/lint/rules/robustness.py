"""Robustness rules: overload safety on the protocol paths.

The flow-control work (RNR NACK + eager budgets) exists because a
receiver that buffers per-peer state without a bound turns overload
into silent memory growth instead of a protocol event.  These rules
keep that class of bug from creeping back in.
"""

from __future__ import annotations

import re
from typing import Iterator

from ..framework import Rule, SelfTestCase, register, strip_comments

# --- unbounded-peer-growth --------------------------------------------
#
# A container keyed by (or holding) peer identity on the NIC/net packet
# paths is attacker-sized: every remote sender can force an entry, and
# an incast forces many at once.  Growth of such a container must sit
# behind a visible capacity check — an admission/budget call or a
# size/membership probe of the same container — or carry a waiver
# spelling out the bound (e.g. "one entry per peer, flag-guarded").
#
# Pass 1 collects member names whose declaration is a growable standard
# container (or common::FlatMap) with a peer-identity hint (`NodeId` in
# the template arguments, or `peer` in the name).  DenseNodeTable is
# deliberately absent: it is node-indexed and bounded by the machine
# size at construction.  Pass 2 flags growth calls on those members in
# src/nic and src/net unless a capacity check appears on the flagged
# line or the few lines above it.

PEER_DIRS = {"nic", "net"}

GROWABLE_DECL = re.compile(
    r"\b(?:std::(?:vector|deque|list|map|multimap|unordered_map"
    r"|unordered_multimap)|common::FlatMap)\s*<([^;{=]*)>\s+(\w+)\s*[;{=]")
PEER_HINT = re.compile(r"\bNodeId\b|peer", re.IGNORECASE)

GROWTH_CALLS = (r"(?:push_back|emplace_back|push_front|emplace_front"
                r"|emplace|insert|try_emplace)")
GUARD_LOOKBEHIND = 6  # lines scanned above the growth site for a check
# Generic admission-layer calls that bound growth no matter which
# container they protect.
ADMISSION_GUARD = re.compile(
    r"\b(?:try_admit|fits|budget_limited|reserve_eager)\s*\(")


def _collect_peer_containers(file_lines, ctx) -> None:
    names = ctx.setdefault("peer_container_names", set())
    for _, lines in file_lines:
        for line in lines:
            m = GROWABLE_DECL.search(strip_comments(line))
            if m and (PEER_HINT.search(m.group(1))
                      or PEER_HINT.search(m.group(2))):
                names.add(m.group(2))


def _check_unbounded_peer_growth(path, raw_lines, code_lines,
                                 ctx) -> Iterator[tuple[int, str]]:
    del raw_lines
    if not (PEER_DIRS & set(path.parts)):
        return
    names = ctx.get("peer_container_names", set())
    for name in sorted(names):
        growth = re.compile(
            rf"\b{name}\s*\.\s*{GROWTH_CALLS}\s*\("
            rf"|\b{name}\s*\[[^\]]*\]\s*=")
        guard = re.compile(
            rf"\b{name}\s*\.\s*(?:size|count|contains|find|full)\s*\(")
        for lineno, code in enumerate(code_lines, start=1):
            if not growth.search(code):
                continue
            window = code_lines[max(0, lineno - 1 - GUARD_LOOKBEHIND):lineno]
            if any(guard.search(w) or ADMISSION_GUARD.search(w)
                   for w in window):
                continue
            yield lineno, (
                f"growth of per-peer container '{name}' without a "
                f"capacity check (every remote sender can force an "
                f"entry; bound it behind an admission/size check or "
                f"waive with the bound spelled out)")


# --- alpu-plane-write-outside-parity ----------------------------------
#
# The ALPU match array keeps a parity bit per plane word (bits/mask/
# cookie) and per validity word; every store to a plane must reheal the
# covering parity via the parity_update_* / parity_rebuild_* accessors
# or the SEU detection layer silently stops covering that word — the
# exact failure class (silent corruption) the fault model exists to
# rule out.  This rule flags plane stores in src/alpu whose enclosing
# function never calls a parity accessor afterwards.  The window runs
# to the end of the function (the closing brace at column zero) rather
# than a fixed line count because compaction memmoves a whole range and
# reheals once at the end.  Deliberate corruption sites (the injector,
# corrupt_for_test, the silent-flip teeth) carry waivers naming this
# rule.  Container geometry calls (.assign/.resize in configure) are
# out of scope: they run before a fault model can be installed and
# install_fault_model() rebuilds all parity from scratch.

PLANES = r"(?:bits_|mask_|cookie_|valid_)"

# A store: subscript assignment (plain or compound, but not ==),
# std::fill over a plane, or mem{move,cpy,set} with a plane destination.
PLANE_STORE = re.compile(
    rf"\b{PLANES}\s*\[[^\]]*\]\s*(?:[|&^+*/-]?=)(?!=)"
    rf"|\b(?:std::)?fill(?:_n)?\s*\(\s*{PLANES}"
    rf"|\bmem(?:move|cpy|set)\s*\(\s*&?\s*{PLANES}")
PARITY_REHEAL = re.compile(r"\bparity_(?:update|rebuild)_\w+\s*\(")
FUNCTION_END = re.compile(r"^\}")


def _check_plane_write_outside_parity(path, raw_lines, code_lines,
                                      ctx) -> Iterator[tuple[int, str]]:
    del raw_lines, ctx
    if "alpu" not in path.parts:
        return
    for lineno, code in enumerate(code_lines, start=1):
        if not PLANE_STORE.search(code):
            continue
        healed = False
        for later in code_lines[lineno - 1:]:
            if PARITY_REHEAL.search(later):
                healed = True
                break
            if FUNCTION_END.match(later):
                break
        if healed:
            continue
        yield lineno, (
            "store to a parity-protected ALPU plane with no "
            "parity_update_*/parity_rebuild_* reheal before the end of "
            "the function (the SEU layer stops covering the word; "
            "reheal it, or waive deliberate corruption naming this "
            "rule)")


register(Rule(
    id="alpu-plane-write-outside-parity", category="robustness",
    severity="error",
    description="ALPU match-plane store (bits_/mask_/cookie_/valid_) "
                "without a parity reheal in the same function — silent "
                "corruption the fault model cannot detect",
    check=_check_plane_write_outside_parity,
    self_tests=[
        SelfTestCase(
            "src/alpu/x.cpp",
            "void f(std::size_t i) {\n"
            "  bits_[i] = w;\n"
            "}\n",
            expect_hit=True),
        SelfTestCase(
            "src/alpu/x.cpp",
            "void f(std::size_t i) {\n"
            "  bits_[i] = w;\n"
            "  valid_[i >> 6] |= std::uint64_t{1} << (i & 63);\n"
            "  parity_update_cell(i);\n"
            "  parity_update_valid_word(i >> 6);\n"
            "}\n",
            expect_hit=False),
        SelfTestCase(
            "src/alpu/x.cpp",
            "void f(std::size_t lo) {\n"
            "  std::memmove(&bits_[lo], &bits_[lo + 1], n);\n"
            "}\n",
            expect_hit=True),
        SelfTestCase(
            "src/alpu/x.cpp",
            "void f(std::size_t lo) {\n"
            "  std::memmove(&bits_[lo], &bits_[lo + 1], n);\n"
            "  // the verify above vouches for the source range\n"
            "  parity_update_range(lo, occupancy_ + 1);\n"
            "}\n",
            expect_hit=False),
        SelfTestCase(
            "src/alpu/x.cpp",
            "void f() {\n"
            "  std::fill(cookie_.begin(), cookie_.end(), 0);\n"
            "  parity_rebuild_all();\n"
            "}\n",
            expect_hit=False),
        SelfTestCase(
            "src/alpu/x.cpp",
            "bool f(std::size_t i) {\n"
            "  return ((bits_[i] ^ probe.bits) & care) == 0;\n"
            "}\n",
            expect_hit=False),  # read, not a store
        SelfTestCase(
            "src/alpu/x.cpp",
            "void f(std::size_t cell) {\n"
            "  bits_[cell] ^= MatchWord{1} << bit;"
            "  // lint: ok(alpu-plane-write-outside-parity) — injector\n"
            "}\n",
            expect_hit=False),  # waived deliberate corruption
        SelfTestCase(
            "src/mem/x.cpp",
            "void f(std::size_t i) {\n"
            "  bits_[i] = w;\n"
            "}\n",
            expect_hit=False),  # outside src/alpu
    ]))


register(Rule(
    id="unbounded-peer-growth", category="robustness", severity="error",
    description="unchecked growth of peer-keyed containers on the NIC/net "
                "packet paths (src/nic, src/net) — overload must hit an "
                "admission check, not silent memory growth",
    check=_check_unbounded_peer_growth, prepare=_collect_peer_containers,
    self_tests=[
        SelfTestCase(
            "src/nic/x.cpp",
            "std::deque<net::NodeId> waiting_;\n"
            "waiting_.push_back(peer);\n",
            expect_hit=True),
        SelfTestCase(
            "src/nic/x.cpp",
            "std::deque<net::NodeId> waiting_;\n"
            "if (waiting_.size() < kMaxWaiters) {\n"
            "  waiting_.push_back(peer);\n"
            "}\n",
            expect_hit=False),
        SelfTestCase(
            "src/nic/x.cpp",
            "common::FlatMap<net::NodeId, TxState> peers_;\n"
            "peers_.emplace(peer, TxState{});\n",
            expect_hit=True),
        SelfTestCase(
            "src/nic/x.cpp",
            "common::FlatMap<net::NodeId, TxState> peers_;\n"
            "if (!try_admit(packet)) return;\n"
            "peers_.emplace(peer, TxState{});\n",
            expect_hit=False),
        SelfTestCase(
            "src/nic/x.cpp",
            "std::vector<int> counts_;\n"
            "counts_.push_back(1);\n",
            expect_hit=False),  # no peer-identity hint
        SelfTestCase(
            "src/nic/x.cpp",
            "common::DenseNodeTable<TxState> tx_;\n"
            "tx_[peer].next_seq = 0;\n",
            expect_hit=False),  # node-indexed, bounded at construction
        SelfTestCase(
            "src/workload/x.cpp",
            "std::deque<net::NodeId> waiting_;\n"
            "waiting_.push_back(peer);\n",
            expect_hit=False),  # off the packet path
    ]))
