"""Determinism rules: the known sources of run-to-run nondeterminism.

Every experiment in this repo must be bit-reproducible from its
parameters (docs/SIMULATOR.md): the DES kernel breaks timestamp ties
with a monotone sequence number, the sweep runner produces
byte-identical CSV at every job count, and the workloads take explicit
seeds.  These rules reject anything that makes a run depend on when or
where it executed, on ASLR, or on hash-bucket order.

All rules here carry the ``determinism`` category, so the legacy
``determinism: ok`` waiver comments keep working alongside the newer
``lint: ok(rule-id)`` form.
"""

from __future__ import annotations

import pathlib
import re
from typing import Iterator

from ..framework import Rule, SelfTestCase, register

# Directories whose per-message tables must be the deterministic pooled
# containers (common/dense.hpp) rather than raw unordered maps.
CONTROL_PATH_DIRS = {"nic", "net"}


def _pattern_rule(rule_id: str, pattern: str, message: str,
                  bad: str, good: str) -> Rule:
    compiled = re.compile(pattern)

    def check(path: pathlib.PurePath, raw_lines: list[str],
              code_lines: list[str], ctx: dict) -> Iterator[tuple[int, str]]:
        del path, raw_lines, ctx
        for lineno, code in enumerate(code_lines, start=1):
            if compiled.search(code):
                yield lineno, message

    return register(Rule(
        id=rule_id, category="determinism", severity="error",
        description=message, check=check,
        self_tests=[
            SelfTestCase("src/sim/x.cpp", bad, expect_hit=True),
            SelfTestCase("src/sim/x.cpp", good, expect_hit=False),
        ]))


_pattern_rule(
    "libc-rand", r"(?<![\w:])s?rand\s*\(",
    "libc rand()/srand() (seedless global stream; use common::Xoshiro256)",
    bad="int x = rand();",
    good="int x = rng.next();")

_pattern_rule(
    "random-device", r"\brandom_device\b",
    "std::random_device (hardware entropy; runs are not reproducible)",
    bad="std::random_device rd;",
    good="common::Xoshiro256 rng(seed);")

_pattern_rule(
    "wall-clock", r"(?<![\w:_.])time\s*\(\s*(?:NULL|nullptr|0)?\s*\)"
                  r"|\bgettimeofday\s*\(",
    "wall-clock time (results must not depend on when the run happened)",
    bad="auto t = time(nullptr);",
    good="const TimePs t = engine.now();")

_pattern_rule(
    "chrono-clock",
    r"\b(?:system_clock|steady_clock|high_resolution_clock)\b",
    "chrono wall clock (simulated time comes from the engine)",
    bad="auto t0 = std::chrono::steady_clock::now();",
    good="const TimePs t0 = engine.now();")

_pattern_rule(
    "pointer-keyed-map", r"\bstd::(?:multi)?(?:map|set)\s*<[^,>]*\*",
    "pointer-keyed std::map/set (ordered by allocation address, i.e. ASLR)",
    bad="std::map<Node*, int> by_node;",
    good="std::map<NodeId, int> by_node;")

_pattern_rule(
    "hardware-concurrency", r"\bhardware_concurrency\b",
    "hardware_concurrency (the host's core count must not shape simulated "
    "results; waive for pools of independent host threads)",
    bad="unsigned n = std::thread::hardware_concurrency();",
    good="unsigned n = flags.jobs;")


# --- unordered-container rules (cross-file state) ---------------------

UNORDERED_DECL = re.compile(
    r"\bstd::unordered_(?:multi)?(?:map|set)\s*<[^;]*>\s+(\w+)\s*[;{=]")
UNORDERED_ANY = re.compile(r"\bstd::unordered_(?:multi)?(?:map|set)\b")
RANGE_FOR = re.compile(r"\bfor\s*\([^():]*:\s*(?:this->)?(\w+)\s*\)")


def _collect_unordered(file_lines, ctx: dict) -> None:
    """Names of members/locals declared as unordered containers anywhere
    in the linted tree (declaration and iteration often live in
    different files: member in the .hpp, loop in the .cpp)."""
    from ..framework import strip_comments
    names = ctx.setdefault("unordered_names", set())
    for _, lines in file_lines:
        for line in lines:
            m = UNORDERED_DECL.search(strip_comments(line))
            if m:
                names.add(m.group(1))


def _check_unordered_iteration(path, raw_lines, code_lines,
                               ctx) -> Iterator[tuple[int, str]]:
    del path, raw_lines
    names = ctx.get("unordered_names", set())
    for lineno, code in enumerate(code_lines, start=1):
        m = RANGE_FOR.search(code)
        if m and m.group(1) in names:
            yield lineno, (f"iteration over unordered container "
                           f"'{m.group(1)}' (hash order is not "
                           f"deterministic)")


register(Rule(
    id="unordered-iteration", category="determinism", severity="error",
    description="range-for over a std::unordered_{map,set} (hash iteration "
                "order varies across libstdc++ versions and ASLR)",
    check=_check_unordered_iteration, prepare=_collect_unordered,
    self_tests=[
        SelfTestCase(
            "src/sim/x.cpp",
            "std::unordered_map<int, int> table_;\n"
            "for (auto& kv : table_) {}\n",
            expect_hit=True),
        SelfTestCase(
            "src/sim/x.cpp",
            "std::vector<int> table_;\n"
            "for (auto& kv : table_) {}\n",
            expect_hit=False),
    ]))


def _check_control_path_unordered(path, raw_lines, code_lines,
                                  ctx) -> Iterator[tuple[int, str]]:
    del raw_lines, ctx
    if not (CONTROL_PATH_DIRS & set(path.parts)):
        return
    for lineno, code in enumerate(code_lines, start=1):
        if UNORDERED_ANY.search(code):
            yield lineno, ("raw unordered container on the NIC/net control "
                           "path (use common/dense.hpp "
                           "DenseNodeTable/FlatMap)")


register(Rule(
    id="control-path-unordered", category="determinism", severity="error",
    description="std::unordered_{map,set} in src/nic or src/net (per-message "
                "protocol state must use the deterministic pooled containers "
                "from common/dense.hpp)",
    check=_check_control_path_unordered,
    self_tests=[
        SelfTestCase("src/nic/x.hpp",
                     "std::unordered_map<int, int> inflight_;",
                     expect_hit=True),
        SelfTestCase("src/workload/x.hpp",
                     "std::unordered_map<int, int> inflight_;",
                     expect_hit=False),
    ]))
