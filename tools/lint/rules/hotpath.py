"""Hot-path rules: allocation and dispatch discipline in the simulator
kernel and the per-message protocol path.

The message-rate benchmark gates these paths (bench/baselines/): one
heap allocation per simulated event is the difference between the
calibrated figures and noise.  The kernel provides pooled alternatives
for every flagged pattern — the slot-pool EventCallback (SBO, no heap
under kInlineBytes), the coroutine FramePool, and the dense containers
in common/dense.hpp.
"""

from __future__ import annotations

import pathlib
import re
from typing import Iterator

from ..framework import Rule, SelfTestCase, register, strip_comments

# The dirs whose per-event code the message-rate gate exercises.
HOT_PATH_DIRS = {"sim", "nic", "net", "mem", "match", "alpu"}


def _on_hot_path(path: pathlib.PurePath) -> bool:
    return bool(HOT_PATH_DIRS & set(path.parts))


# --- raw-new-delete ---------------------------------------------------
#
# Matches raw `new Type` / `delete ptr` expressions.  Allocator-function
# calls (`::operator new(n)` — the pool implementations themselves) and
# placement news (`new (p) T`) have a `(` straight after the keyword and
# do not match.  make_unique/make_shared never match (no bare keyword).

NEW_EXPR = re.compile(r"(?<![\w:])new\s+[A-Za-z_:<(]*[A-Za-z_]")
DELETE_EXPR = re.compile(r"(?<![\w:])delete(?:\[\])?\s+[\w(*]")
ALLOC_FN = re.compile(r"\boperator\s+(?:new|delete)\b")


def _check_raw_new_delete(path, raw_lines, code_lines,
                          ctx) -> Iterator[tuple[int, str]]:
    del raw_lines, ctx
    if not _on_hot_path(path):
        return
    for lineno, code in enumerate(code_lines, start=1):
        if ALLOC_FN.search(code):
            continue  # allocator-function definitions/calls (pool impls)
        if NEW_EXPR.search(code) or DELETE_EXPR.search(code):
            yield lineno, ("raw new/delete on a hot path (use the slot "
                           "pool, FramePool, or std::unique_ptr; pools "
                           "themselves get a waiver)")


register(Rule(
    id="raw-new-delete", category="hotpath", severity="error",
    description="raw new/delete expressions in the per-event code paths "
                "(src/sim, src/nic, src/net, src/mem, src/match, src/alpu)",
    check=_check_raw_new_delete,
    self_tests=[
        SelfTestCase("src/nic/x.cpp", "auto* s = new SendState;",
                     expect_hit=True),
        SelfTestCase("src/nic/x.cpp", "delete state;", expect_hit=True),
        SelfTestCase("src/nic/x.cpp",
                     "auto s = std::make_unique<SendState>();",
                     expect_hit=False),
        SelfTestCase("src/sim/x.hpp", "return ::operator new(n);",
                     expect_hit=False),
        SelfTestCase("src/alpu/x.cpp",
                     'ALPU_ASSERT(ok, "delete past the valid prefix");',
                     expect_hit=False),
        SelfTestCase("src/workload/x.cpp", "auto* s = new SendState;",
                     expect_hit=False),
    ]))


# --- std-function-hot-path --------------------------------------------
#
# std::function type-erases through the heap once the capture exceeds
# its (implementation-defined, ~16-byte) inline buffer; the kernel's
# EventCallback carries kInlineBytes of SBO precisely so per-event
# closures never allocate.  A std::function member on the hot path is
# either dead weight or a silent malloc per event — use EventCallback,
# or waive with the capture-size argument spelled out.

STD_FUNCTION = re.compile(r"\bstd::function\s*<")


def _check_std_function(path, raw_lines, code_lines,
                        ctx) -> Iterator[tuple[int, str]]:
    del raw_lines, ctx
    if not _on_hot_path(path):
        return
    for lineno, code in enumerate(code_lines, start=1):
        if STD_FUNCTION.search(code):
            yield lineno, ("std::function on a hot path (heap-allocates "
                           "past ~16 captured bytes; use sim::EventCallback "
                           "— kInlineBytes of SBO — or waive with a "
                           "capture-size justification)")


register(Rule(
    id="std-function-hot-path", category="hotpath", severity="error",
    description="std::function in the per-event code paths, where the "
                "SBO EventCallback (or a plain function pointer) belongs",
    check=_check_std_function,
    self_tests=[
        SelfTestCase("src/nic/x.hpp",
                     "std::function<void(const Packet&)> handler_;",
                     expect_hit=True),
        SelfTestCase("src/nic/x.hpp", "sim::EventCallback handler_;",
                     expect_hit=False),
        SelfTestCase("src/workload/x.hpp",
                     "std::function<void()> on_done_;", expect_hit=False),
    ]))


# --- map-iteration-scheduling -----------------------------------------
#
# Scheduling events while iterating an ordered map couples event order
# to the map's key order — correct only while the key happens to sort
# the way the protocol needs, and a silent reordering hazard the moment
# someone changes the key type.  Collect names declared as std::map /
# std::multimap anywhere in the tree, then flag range-fors over them
# whose body (the next few lines) schedules or posts events.

MAP_DECL = re.compile(
    r"\bstd::(?:multi)?map\s*<[^;]*>\s+(\w+)\s*[;{=]")
RANGE_FOR = re.compile(r"\bfor\s*\([^():]*:\s*(?:this->)?(\w+)\s*\)")
SCHEDULES = re.compile(
    r"\bschedule_(?:at|in)\s*\(|(?:->|\.)\s*post\s*\(")
BODY_LOOKAHEAD = 8  # lines of loop body scanned after the for(...)


def _collect_map_members(file_lines, ctx) -> None:
    names = ctx.setdefault("ordered_map_names", set())
    for _, lines in file_lines:
        for line in lines:
            m = MAP_DECL.search(strip_comments(line))
            if m:
                names.add(m.group(1))


def _check_map_iteration_scheduling(path, raw_lines, code_lines,
                                    ctx) -> Iterator[tuple[int, str]]:
    del path, raw_lines
    names = ctx.get("ordered_map_names", set())
    for lineno, code in enumerate(code_lines, start=1):
        m = RANGE_FOR.search(code)
        if not m or m.group(1) not in names:
            continue
        body = code_lines[lineno - 1:lineno - 1 + BODY_LOOKAHEAD]
        if any(SCHEDULES.search(b) for b in body):
            yield lineno, (f"event scheduling driven by iteration over "
                           f"ordered map '{m.group(1)}' (event order is "
                           f"coupled to the map's key order)")


register(Rule(
    id="map-iteration-scheduling", category="hotpath", severity="error",
    description="range-for over a std::map that schedules/posts events in "
                "its body (event order becomes a function of key order)",
    check=_check_map_iteration_scheduling, prepare=_collect_map_members,
    self_tests=[
        SelfTestCase(
            "src/sim/x.cpp",
            "std::map<NodeId, State> pending_;\n"
            "for (auto& [id, st] : pending_) {\n"
            "  engine.schedule_at(st.when, cb);\n"
            "}\n",
            expect_hit=True),
        SelfTestCase(
            "src/sim/x.cpp",
            "std::map<NodeId, State> pending_;\n"
            "for (auto& [id, st] : pending_) {\n"
            "  total += st.bytes;\n"
            "}\n",
            expect_hit=False),
    ]))
