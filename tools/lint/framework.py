"""Rule framework for the project linter.

The linter is a multi-pass, rule-based static checker for the known
classes of bugs the compiler cannot see: nondeterminism sources (the
repo's bit-reproducibility guarantee), hot-path allocation regressions,
and project-convention violations.  Each rule is a small object with an
id, a category, a severity and a `check` generator; rules register
themselves in a global registry at import time (tools/lint/rules/).

Waivers
-------
A finding is suppressed by a comment on the flagged line or in the
comment block immediately above it:

  * ``lint: ok(rule-id)`` — waives exactly that rule, any category.
    Always include a justification after an em-dash.
  * ``determinism: ok`` — the legacy waiver; still honored, but only
    for rules in the ``determinism`` category.

Severities
----------
``error`` findings fail the run (exit 1); ``warning`` findings are
reported but do not affect the exit status.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
import re
from typing import Callable, Iterable, Iterator

SOURCE_SUFFIXES = {".cpp", ".hpp", ".h", ".cc"}

LEGACY_WAIVER = "determinism: ok"
WAIVER_RE = re.compile(r"lint:\s*ok\(([\w-]+)\)")


@dataclasses.dataclass(frozen=True)
class Finding:
    rule_id: str
    severity: str  # "error" | "warning"
    path: str
    line: int
    message: str
    snippet: str

    def text(self) -> str:
        return (f"{self.path}:{self.line}: [{self.rule_id}/{self.severity}] "
                f"{self.message}: {self.snippet}")

    def github(self) -> str:
        # GitHub workflow-command annotation (shows inline on the PR diff).
        level = "error" if self.severity == "error" else "warning"
        msg = f"[{self.rule_id}] {self.message}"
        return f"::{level} file={self.path},line={self.line}::{msg}"

    def as_json(self) -> dict:
        return dataclasses.asdict(self)


@dataclasses.dataclass
class SelfTestCase:
    """One self-test snippet: `path` places it for dir-scoped rules."""
    path: str
    source: str
    expect_hit: bool


@dataclasses.dataclass
class Rule:
    id: str
    category: str  # "determinism" | "hotpath" | "project"
    severity: str  # "error" | "warning"
    description: str
    # check(path, raw_lines, code_lines, ctx) -> iterator of
    # (lineno, message); `code_lines` are comment-stripped.
    check: Callable[
        [pathlib.PurePath, list[str], list[str], dict],
        Iterator[tuple[int, str]]]
    # Optional whole-tree pass run before any check() (cross-file state,
    # e.g. container member names declared in headers, iterated in .cpp).
    prepare: Callable[[list[tuple[pathlib.PurePath, list[str]]], dict],
                      None] | None = None
    self_tests: list[SelfTestCase] = dataclasses.field(default_factory=list)


_REGISTRY: dict[str, Rule] = {}


def register(rule: Rule) -> Rule:
    if rule.id in _REGISTRY:
        raise ValueError(f"duplicate rule id: {rule.id}")
    _REGISTRY[rule.id] = rule
    return rule


def all_rules() -> list[Rule]:
    return [r for _, r in sorted(_REGISTRY.items())]


def get_rule(rule_id: str) -> Rule | None:
    return _REGISTRY.get(rule_id)


_STRING_LIT = re.compile(r'"(?:[^"\\]|\\.)*"' r"|'(?:[^'\\]|\\.)*'")


def strip_comments(line: str) -> str:
    """Remove /* */ and // comments and blank out string/char literal
    contents (approximate: the sources do not use multi-line /* */
    blocks mid-statement).  Literal stripping keeps keywords inside
    assertion messages ("delete past the valid prefix") from tripping
    the code-pattern rules; it runs before the // split so a URL inside
    a string is not mistaken for a comment."""
    line = re.sub(r"/\*.*?\*/", "", line)
    line = _STRING_LIT.sub('""', line)
    return line.split("//", 1)[0]


def waivers_for_line(raw_lines: list[str], lineno: int) -> tuple[set[str], bool]:
    """(explicit rule-ids waived, legacy-determinism-waiver present) for
    the flagged line: its own trailing comment plus the contiguous
    comment block immediately above it."""
    rule_ids: set[str] = set()
    legacy = False

    def scan(line: str) -> None:
        nonlocal legacy
        rule_ids.update(WAIVER_RE.findall(line))
        if LEGACY_WAIVER in line:
            legacy = True

    scan(raw_lines[lineno - 1])
    i = lineno - 2
    while i >= 0 and raw_lines[i].lstrip().startswith("//"):
        scan(raw_lines[i])
        i -= 1
    return rule_ids, legacy


def is_waived(rule: Rule, raw_lines: list[str], lineno: int) -> bool:
    rule_ids, legacy = waivers_for_line(raw_lines, lineno)
    if rule.id in rule_ids:
        return True
    return legacy and rule.category == "determinism"


def collect_files(roots: list[pathlib.Path]) -> list[pathlib.Path]:
    files: list[pathlib.Path] = []
    for root in roots:
        if root.is_file():
            files.append(root)
        elif root.is_dir():
            files.extend(p for p in sorted(root.rglob("*"))
                         if p.suffix in SOURCE_SUFFIXES)
        else:
            raise FileNotFoundError(str(root))
    return files


def run_rules(file_lines: list[tuple[pathlib.PurePath, list[str]]],
              rules: Iterable[Rule]) -> list[Finding]:
    """Run every rule over every (path, lines) pair.  Pure function of
    its inputs — the self-test drives it on synthetic sources."""
    ctx: dict = {}
    stripped = [(path, lines, [strip_comments(l) for l in lines])
                for path, lines in file_lines]
    rules = list(rules)
    for rule in rules:
        if rule.prepare is not None:
            rule.prepare(file_lines, ctx)
    findings: list[Finding] = []
    for path, raw_lines, code_lines in stripped:
        for rule in rules:
            for lineno, message in rule.check(path, raw_lines, code_lines,
                                              ctx):
                if is_waived(rule, raw_lines, lineno):
                    continue
                findings.append(Finding(
                    rule_id=rule.id, severity=rule.severity,
                    path=str(path), line=lineno, message=message,
                    snippet=raw_lines[lineno - 1].strip()))
    findings.sort(key=lambda f: (f.path, f.line, f.rule_id))
    return findings


def lint_paths(roots: list[pathlib.Path],
               rules: Iterable[Rule]) -> tuple[list[Finding], int]:
    """Lint files under `roots`; returns (findings, files scanned)."""
    files = collect_files(roots)
    file_lines = [(pathlib.PurePath(p),
                   p.read_text(encoding="utf-8").splitlines())
                  for p in files]
    return run_rules(file_lines, rules), len(files)


def render_json(findings: list[Finding], files_scanned: int) -> str:
    return json.dumps({
        "files_scanned": files_scanned,
        "errors": sum(1 for f in findings if f.severity == "error"),
        "warnings": sum(1 for f in findings if f.severity == "warning"),
        "findings": [f.as_json() for f in findings],
    }, indent=2)


def run_self_tests() -> list[str]:
    """Run every rule's embedded self-test snippets; returns failure
    descriptions (empty = all rules behave)."""
    failures: list[str] = []
    for rule in all_rules():
        if not rule.self_tests:
            failures.append(f"{rule.id}: no self-tests defined")
            continue
        for i, case in enumerate(rule.self_tests):
            file_lines = [(pathlib.PurePath(case.path),
                           case.source.splitlines())]
            findings = run_rules(file_lines, [rule])
            hit = any(f.rule_id == rule.id for f in findings)
            if hit != case.expect_hit:
                verb = "expected a finding" if case.expect_hit \
                    else "expected no finding"
                failures.append(
                    f"{rule.id} case {i} ({case.path}): {verb}, got "
                    f"{[f.text() for f in findings]!r}")
    return failures
