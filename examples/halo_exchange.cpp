// Halo exchange: the application pattern behind the paper's motivation.
//
// Studies [8][9] found real MPI applications traverse queues tens to
// hundreds of entries deep, largely because codes pre-post receives for
// all neighbours (often with MPI_ANY_SOURCE) and iterate.  This example
// runs a 2D periodic halo exchange on a rank grid: each iteration every
// rank pre-posts receives for its four neighbours, then sends four
// halos, then waits.  With `deep_prepost` iterations' worth of receives
// posted up front, the posted queue grows the way those studies
// describe — and the ALPU's benefit shows directly in wall-clock
// (simulated) application time.
#include <cstdio>
#include <vector>

#include "common/table.hpp"
#include "mpi/mpi.hpp"
#include "workload/scenarios.hpp"

using namespace alpu;

namespace {

constexpr int kGrid = 3;            // 3x3 ranks
constexpr int kIterations = 24;
constexpr std::uint32_t kHaloBytes = 512;

int rank_of(int x, int y) {
  const int gx = (x + kGrid) % kGrid;
  const int gy = (y + kGrid) % kGrid;
  return gy * kGrid + gx;
}

/// One rank's program.  `depth` iterations of receives are pre-posted
/// ahead of time (deep pre-posting, the queue-growing pattern).
sim::Process node_program(mpi::Machine& machine, int rank, int depth) {
  mpi::Rank& self = machine.rank(rank);
  const int x = rank % kGrid;
  const int y = rank / kGrid;
  const int neighbours[4] = {rank_of(x - 1, y), rank_of(x + 1, y),
                             rank_of(x, y - 1), rank_of(x, y + 1)};

  // Tag = iteration number; receives use MPI_ANY_SOURCE (the prevalent
  // wildcard per Section II's application survey), distinguished by tag.
  std::vector<std::vector<mpi::Request>> recvs(
      static_cast<std::size_t>(kIterations));
  for (int it = 0; it < depth && it < kIterations; ++it) {
    for (int n = 0; n < 4; ++n) {
      recvs[static_cast<std::size_t>(it)].push_back(
          self.irecv(mpi::kAnySource, it, kHaloBytes));
    }
  }

  for (int it = 0; it < kIterations; ++it) {
    if (it >= depth) {
      for (int n = 0; n < 4; ++n) {
        recvs[static_cast<std::size_t>(it)].push_back(
            self.irecv(mpi::kAnySource, it, kHaloBytes));
      }
    }
    std::vector<mpi::Request> sends;
    for (int neighbour : neighbours) {
      sends.push_back(self.isend(neighbour, it, kHaloBytes));
    }
    co_await self.waitall(std::move(recvs[static_cast<std::size_t>(it)]));
    co_await self.waitall(std::move(sends));
  }
  co_await self.barrier();
}

common::TimePs run_halo(workload::NicMode mode, int depth,
                        std::size_t threshold) {
  sim::Engine engine;
  auto cfg = workload::make_system_config(mode, kGrid * kGrid);
  cfg.nic.alpu_policy.insert_threshold = threshold;
  mpi::Machine machine(engine, cfg);
  sim::ProcessPool pool(engine);
  for (int r = 0; r < kGrid * kGrid; ++r) {
    pool.spawn(node_program(machine, r, depth));
  }
  const common::TimePs end = engine.run();
  if (!pool.all_done()) {
    std::fprintf(stderr, "halo exchange deadlocked\n");
    std::abort();
  }
  return end;
}

}  // namespace

int main() {
  std::printf("2D periodic halo exchange, %dx%d ranks, %d iterations,\n"
              "%u-byte halos, MPI_ANY_SOURCE receives.\n\n",
              kGrid, kGrid, kIterations, kHaloBytes);

  common::TextTable t;
  t.set_header({"pre-post depth", "posted recvs", "baseline (us)",
                "alpu thr=0 (us)", "alpu thr=8 (us)"});
  for (int depth : {1, kIterations}) {
    const common::TimePs base =
        run_halo(workload::NicMode::kBaseline, depth, 0);
    const common::TimePs thr0 =
        run_halo(workload::NicMode::kAlpu128, depth, 0);
    const common::TimePs thr8 =
        run_halo(workload::NicMode::kAlpu128, depth, 8);
    t.add_row({depth == 1 ? "shallow (1 iter)" : "deep (all iters)",
               std::to_string(4 * depth),
               common::fmt_double(common::to_us(base), 2),
               common::fmt_double(common::to_us(thr0), 2),
               common::fmt_double(common::to_us(thr8), 2)});
  }
  std::printf("%s\n", t.render().c_str());
  std::printf(
      "A lockstep halo exchange is the ALPU's WORST realistic traffic:\n"
      "each iteration's receives are consumed in FIFO order, so the\n"
      "software search is short even when the posted queue is long, and\n"
      "the offload's per-insert and per-result costs buy nothing.  With\n"
      "the Section IV-B threshold heuristic the shallow case sidesteps\n"
      "the unit entirely; the deep case still pays — queue LENGTH, which\n"
      "the heuristic sees, is not search DEPTH, which sets the payoff.\n"
      "Contrast with examples/unexpected_flood.cpp, the ALPU's best case.\n");
  return 0;
}
