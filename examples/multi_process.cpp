// Multi-process ALPU sharing (the footnote-1 extension).
//
// One physical match unit serves several co-resident processes: every
// entry and probe carries a PID in the bits above the 42-bit MPI
// packing, the comparators treat the PID as always-significant, and a
// process's exit tears down exactly its own entries with the RESET
// MATCHING sweep — no RESET of the whole unit, no disturbance to the
// neighbours.
#include <cstdio>

#include "alpu/multi.hpp"
#include "sim/engine.hpp"

using namespace alpu;

namespace {

hw::Response pump(sim::Engine& engine, hw::MultiProcessAlpu& multi) {
  while (!multi.unit().result_available()) {
    engine.run_until(engine.now() + multi.unit().config().clock.period());
  }
  return *multi.pop_result();
}

void settle(sim::Engine& engine, int cycles) {
  engine.run_until(engine.now() +
                   static_cast<common::TimePs>(cycles) * 2'000);
}

}  // namespace

int main() {
  std::printf("Multi-process ALPU: three MPI jobs, one 64-cell unit\n\n");

  sim::Engine engine;
  hw::AlpuConfig base;
  base.total_cells = 64;
  base.block_size = 16;
  hw::MultiProcessAlpu multi(engine, "shared-alpu", base);

  // Each job posts a few receives: same {context, source, tag} values,
  // distinguishable only by PID.
  for (std::uint32_t pid : {1u, 2u, 3u}) {
    (void)multi.push_command({hw::CommandKind::kStartInsert, 0, 0, 0});
    (void)pump(engine, multi);  // ack
    for (std::uint32_t tag = 0; tag < 4; ++tag) {
      const auto p = match::make_recv_pattern(0, 1, tag);
      const bool ok =
          multi.push_insert(pid, p.bits, p.mask, pid * 100 + tag);
      if (!ok) return 1;
    }
    (void)multi.push_command({hw::CommandKind::kStopInsert, 0, 0, 0});
    settle(engine, 32);
    std::printf("job %u posted 4 receives (unit now holds %zu)\n", pid,
                multi.unit().array().occupancy());
  }

  // Identical headers, different processes: each job sees only its own.
  std::printf("\nidentical header {src=1 tag=2}, probed per job:\n");
  for (std::uint32_t pid : {1u, 2u, 3u}) {
    (void)multi.push_probe(
        pid, {match::pack(match::Envelope{0, 1, 2}), 0, pid});
    const hw::Response r = pump(engine, multi);
    std::printf("  job %u -> %s tag=0x%x\n", pid,
                r.kind == hw::ResponseKind::kMatchSuccess ? "MATCH" : "miss",
                r.cookie);
  }

  // Job 2 exits: flush exactly its entries.
  (void)multi.flush_process(2);
  settle(engine, 32);
  std::printf("\njob 2 exited (RESET MATCHING): unit holds %zu entries, "
              "flushed %llu\n",
              multi.unit().array().occupancy(),
              static_cast<unsigned long long>(
                  multi.unit().stats().flushed_entries));

  // The survivors still match; job 2 does not.
  for (std::uint32_t pid : {1u, 2u, 3u}) {
    (void)multi.push_probe(
        pid, {match::pack(match::Envelope{0, 1, 3}), 0, 10 + pid});
    const hw::Response r = pump(engine, multi);
    std::printf("  job %u probe tag=3 -> %s\n", pid,
                r.kind == hw::ResponseKind::kMatchSuccess ? "MATCH" : "miss");
  }
  return 0;
}
