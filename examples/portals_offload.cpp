// Portals building blocks with ALPU offload (the Section VIII roadmap).
//
// Sets up one process's portal table the way an MPI-over-Portals
// implementation does — a match list of pre-posted receive buffers on
// one portal index — attaches an ALPU to it, and delivers a stream of
// puts, printing the events an upper layer would consume.
#include <cstdio>

#include "portals/portals.hpp"

using namespace alpu;

namespace {

const char* kind_name(portals::EventKind kind) {
  switch (kind) {
    case portals::EventKind::kPutEnd: return "PUT_END";
    case portals::EventKind::kGetEnd: return "GET_END";
    case portals::EventKind::kUnlink: return "UNLINK";
    case portals::EventKind::kDropped: return "DROPPED";
  }
  return "?";
}

}  // namespace

int main() {
  std::printf("Portals match list with ALPU offload\n\n");

  portals::PortalTable table(/*indices=*/4);
  const auto eq = table.eq_alloc(64);
  constexpr std::size_t kMpiPortal = 0;
  if (!table.attach_alpu(kMpiPortal, /*cells=*/128, /*block=*/16)) {
    std::fprintf(stderr, "attach failed\n");
    return 1;
  }

  // Pre-post eight receive buffers: match bits encode {context, source,
  // tag} the way MPI-over-Portals does; two use ignore bits to take any
  // tag (low 14 bits wild).
  for (std::uint64_t i = 0; i < 6; ++i) {
    portals::MatchEntrySpec spec;
    spec.match_bits = (0x2ull << 32) | (0x40ull << 14) | (10 + i);
    spec.md.length = 4096;
    (void)table.me_attach(kMpiPortal, spec, eq);
  }
  for (std::uint64_t s = 0; s < 2; ++s) {
    portals::MatchEntrySpec spec;
    spec.match_bits = (0x2ull << 32) | ((0x50ull + s) << 14);
    spec.ignore_bits = (1ull << 14) - 1;  // MPI_ANY_TAG
    spec.md.length = 4096;
    (void)table.me_attach(kMpiPortal, spec, eq);
  }
  std::printf("posted %zu entries; accelerated=%s\n\n",
              table.list_length(kMpiPortal),
              table.accelerated(kMpiPortal) ? "yes" : "no");

  // Incoming traffic: three matches (one via ignore bits), one stray.
  struct Wire {
    std::uint64_t bits;
    std::uint32_t bytes;
  };
  const Wire traffic[] = {
      {(0x2ull << 32) | (0x40ull << 14) | 12, 1024},
      {(0x2ull << 32) | (0x50ull << 14) | 777, 512},  // ANY_TAG entry
      {(0x2ull << 32) | (0x40ull << 14) | 10, 64},
      {(0x9ull << 32) | 1, 64},  // no receive posted: dropped
  };
  for (const Wire& w : traffic) {
    const auto r = table.put(kMpiPortal, {3, 1}, w.bits, w.bytes);
    std::printf("put bits=0x%012llx bytes=%-5u -> %s",
                static_cast<unsigned long long>(w.bits), w.bytes,
                r.accepted ? "accepted" : "dropped ");
    if (r.accepted) {
      std::printf("  me=%llu mlength=%u alpu=%s walked=%zu",
                  static_cast<unsigned long long>(r.me), r.mlength,
                  r.alpu_hit ? "hit" : "miss", r.entries_walked);
    }
    std::printf("\n");
  }

  std::printf("\nevents:\n");
  while (auto e = table.eq(eq).poll()) {
    std::printf("  %-8s me=%llu rlength=%u mlength=%u offset=%llu\n",
                kind_name(e->kind), static_cast<unsigned long long>(e->me),
                e->rlength, e->mlength,
                static_cast<unsigned long long>(e->offset));
  }

  const auto& s = table.stats();
  std::printf("\nstats: puts=%llu drops=%llu alpu_hits=%llu walked=%llu\n",
              static_cast<unsigned long long>(s.puts),
              static_cast<unsigned long long>(s.drops),
              static_cast<unsigned long long>(s.alpu_hits),
              static_cast<unsigned long long>(s.entries_walked));
  return 0;
}
