// Quickstart: drive a standalone ALPU through its command protocol.
//
// This is the smallest complete use of the library: instantiate the
// cycle-level Associative List Processing Unit, load it with posted
// receives through the Table I command set (START INSERT -> ACK ->
// INSERT... -> STOP INSERT), and feed it incoming message headers,
// observing the Table II responses and the MPI ordering semantics
// (oldest matching entry wins; matches consume their entry).
#include <cstdio>

#include "alpu/alpu.hpp"
#include "sim/engine.hpp"

using namespace alpu;

namespace {

/// Pump the simulation until the unit produces a response.
hw::Response await_response(sim::Engine& engine, hw::Alpu& unit) {
  while (!unit.result_available()) {
    engine.run_until(engine.now() + unit.config().clock.period());
  }
  return *unit.pop_result();
}

const char* kind_name(hw::ResponseKind kind) {
  switch (kind) {
    case hw::ResponseKind::kStartAck: return "START ACKNOWLEDGE";
    case hw::ResponseKind::kMatchSuccess: return "MATCH SUCCESS";
    case hw::ResponseKind::kMatchFailure: return "MATCH FAILURE";
    case hw::ResponseKind::kParityFault: return "PARITY FAULT";
  }
  return "?";
}

void show(const char* what, const hw::Response& r, common::TimePs t0) {
  std::printf("  %-28s -> %-17s", what, kind_name(r.kind));
  if (r.kind == hw::ResponseKind::kStartAck) {
    std::printf(" free=%u", r.free_slots);
  }
  if (r.kind == hw::ResponseKind::kMatchSuccess) {
    std::printf(" tag=0x%x", r.cookie);
  }
  std::printf("   (t=%.0f ns)\n", common::to_ns(r.issued_at - t0));
}

}  // namespace

int main() {
  std::printf("ALPU quickstart: a 16-cell posted-receive match unit\n\n");

  sim::Engine engine;
  hw::AlpuConfig config;
  config.flavor = hw::AlpuFlavor::kPostedReceive;
  config.total_cells = 16;
  config.block_size = 8;
  config.clock = common::ClockPeriod::from_mhz(500);  // ASIC speed
  hw::Alpu unit(engine, "alpu", config);

  // ---- load three posted receives --------------------------------------
  // ctx 0 / src 3 / tag 7 (exact), ctx 0 / ANY src / tag 7 (wildcard),
  // ctx 0 / src 5 / ANY tag (wildcard).
  std::printf("Insert session (Table I commands):\n");
  const common::TimePs t0 = engine.now();
  (void)unit.push_command({hw::CommandKind::kStartInsert, 0, 0, 0});
  show("START INSERT", await_response(engine, unit), t0);

  const auto exact = match::make_recv_pattern(0, 3, 7);
  const auto any_src = match::make_recv_pattern(0, std::nullopt, 7);
  const auto any_tag = match::make_recv_pattern(0, 5, std::nullopt);
  (void)unit.push_command(
      {hw::CommandKind::kInsert, exact.bits, exact.mask, 0xAAA});
  (void)unit.push_command(
      {hw::CommandKind::kInsert, any_src.bits, any_src.mask, 0xBBB});
  (void)unit.push_command(
      {hw::CommandKind::kInsert, any_tag.bits, any_tag.mask, 0xCCC});
  (void)unit.push_command({hw::CommandKind::kStopInsert, 0, 0, 0});
  engine.run_until(engine.now() + 20 * config.clock.period());
  std::printf("  3 x INSERT + STOP INSERT    (array now holds %zu entries)\n\n",
              unit.array().occupancy());

  // ---- probe with incoming headers --------------------------------------
  std::printf("Incoming headers (oldest matching entry must win):\n");
  auto probe = [&](std::uint32_t src, std::uint32_t tag, const char* note) {
    (void)unit.push_probe(
        {match::pack(match::Envelope{0, src, tag}), 0, 0});
    char label[64];
    std::snprintf(label, sizeof label, "{src=%u tag=%u} %s", src, tag, note);
    show(label, await_response(engine, unit), t0);
  };

  // Matches BOTH the exact entry (0xAAA) and the any-src entry (0xBBB);
  // the exact one is older, so MPI ordering demands 0xAAA.
  probe(3, 7, "(exact beats younger wildcard)");
  // The exact entry was consumed: the same header now hits the wildcard.
  probe(3, 7, "(entry consumed; wildcard now)");
  // Tag wildcard from source 5.
  probe(5, 999, "(ANY_TAG entry)");
  // Nothing left that matches.
  probe(3, 7, "(array has no match left)");

  std::printf("\nOccupancy after the session: %zu (every success deleted "
              "its entry)\n", unit.array().occupancy());
  std::printf("\nNext steps: examples/ping_pong.cpp runs the full simulated\n"
              "machine; bench/ regenerates the paper's tables and figures.\n");
  return 0;
}
