// Two-node MPI ping-pong on the simulated machine.
//
// Reproduces the classical latency test (the measure Section II says
// every high-performance network is judged by) for the baseline NIC and
// both ALPU sizes, across message sizes.  With empty queues the ALPU
// should cost only a small constant overhead — the "virtually no
// overhead for extremely short queues" headline claim.
#include <cstdio>

#include "common/table.hpp"
#include "workload/scenarios.hpp"

int main() {
  using namespace alpu;
  using workload::NicMode;

  common::TextTable table;
  table.set_header({"bytes", "baseline (us)", "alpu128 (us)", "alpu256 (us)",
                    "alpu128 delta (ns)"});

  std::printf("Zero/short-queue ping-pong latency (half round trip, 8 iters)\n\n");
  for (std::uint32_t bytes : {0u, 8u, 64u, 512u, 1024u, 4096u, 16384u}) {
    const common::TimePs base =
        workload::run_pingpong(NicMode::kBaseline, bytes, 8);
    const common::TimePs a128 =
        workload::run_pingpong(NicMode::kAlpu128, bytes, 8);
    const common::TimePs a256 =
        workload::run_pingpong(NicMode::kAlpu256, bytes, 8);
    table.add_row({std::to_string(bytes),
                   common::fmt_double(common::to_us(base), 3),
                   common::fmt_double(common::to_us(a128), 3),
                   common::fmt_double(common::to_us(a256), 3),
                   common::fmt_double(common::to_ns(a128) -
                                          common::to_ns(base), 1)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("The delta column is the ALPU interaction overhead on an\n"
              "empty queue; the paper reports ~80 ns.\n");
  return 0;
}
