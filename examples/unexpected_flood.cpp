// Master/worker unexpected-message flood.
//
// The second queue the paper accelerates: a master that posts its
// receives lazily while eager workers blast results at it accumulates a
// long unexpected queue, and every late receive it posts must search
// that queue (Section VI-C).  This example runs a master collecting
// `kResults` messages from several workers, posting receives only after
// everything has arrived — worst case for the unexpected queue — and
// compares NICs.
#include <cstdio>
#include <vector>

#include "common/table.hpp"
#include "mpi/mpi.hpp"
#include "workload/scenarios.hpp"

using namespace alpu;

namespace {

constexpr int kWorkers = 3;
constexpr std::uint32_t kResultBytes = 64;

struct Outcome {
  common::TimePs drain_time = 0;     ///< master: first post -> all done
  std::size_t peak_unexpected = 0;
};

sim::Process worker(mpi::Machine& machine, int rank, int results) {
  mpi::Rank& self = machine.rank(rank);
  co_await self.recv(0, /*tag=*/0, 0);  // go signal
  for (int i = 0; i < results; ++i) {
    // Tag identifies the work item; the master receives by tag with
    // MPI_ANY_SOURCE (it does not know which worker got which item).
    co_await self.send(0, 1 + i, kResultBytes);
  }
  co_await self.send(0, /*tag=*/4000, 0);  // done marker
}

sim::Process master(mpi::Machine& machine, int results_per_worker,
                    Outcome& out) {
  mpi::Rank& self = machine.rank(0);
  // Pre-post the done markers, then release the workers.
  std::vector<mpi::Request> done;
  for (int w = 1; w <= kWorkers; ++w) {
    done.push_back(self.irecv(w, 4000, 0));
  }
  for (int w = 1; w <= kWorkers; ++w) {
    co_await self.send(w, 0, 0);
  }
  co_await self.waitall(std::move(done));  // all results now unexpected
  out.peak_unexpected = machine.nic(0).unexpected_queue_length();

  const common::TimePs t0 = machine.engine().now();
  // Drain newest-first: the master reduces the freshest results first
  // (a priority-driven consumer), so every receive searches past the
  // whole older backlog — the deep-search regime of Section VI-C.
  std::vector<mpi::Request> recvs;
  for (int i = results_per_worker - 1; i >= 0; --i) {
    for (int w = 0; w < kWorkers; ++w) {
      recvs.push_back(self.irecv(mpi::kAnySource, 1 + i, kResultBytes));
    }
  }
  co_await self.waitall(std::move(recvs));
  out.drain_time = machine.engine().now() - t0;
}

Outcome run(workload::NicMode mode, int results_per_worker) {
  sim::Engine engine;
  mpi::Machine machine(engine,
                       workload::make_system_config(mode, kWorkers + 1));
  Outcome out;
  sim::ProcessPool pool(engine);
  pool.spawn(master(machine, results_per_worker, out));
  for (int w = 1; w <= kWorkers; ++w) {
    pool.spawn(worker(machine, w, results_per_worker));
  }
  engine.run();
  if (!pool.all_done()) {
    std::fprintf(stderr, "flood deadlocked\n");
    std::abort();
  }
  return out;
}

}  // namespace

int main() {
  std::printf("Master/worker flood: %d workers, lazy master, ANY_SOURCE\n"
              "receives posted only after all results are unexpected.\n\n",
              kWorkers);

  common::TextTable t;
  t.set_header({"results/worker", "peak unexpected Q", "baseline drain (us)",
                "alpu256 drain (us)", "speedup"});
  for (int n : {10, 40, 120}) {
    const Outcome base = run(workload::NicMode::kBaseline, n);
    const Outcome alpu = run(workload::NicMode::kAlpu256, n);
    t.add_row({std::to_string(n), std::to_string(base.peak_unexpected),
               common::fmt_double(common::to_us(base.drain_time), 2),
               common::fmt_double(common::to_us(alpu.drain_time), 2),
               common::fmt_double(static_cast<double>(base.drain_time) /
                                      static_cast<double>(alpu.drain_time),
                                  2)});
  }
  std::printf("%s\n", t.render().c_str());
  std::printf("Each late receive searches the whole unexpected backlog in\n"
              "the baseline (quadratic total drain work); the ALPU answers\n"
              "each in constant time until the backlog exceeds its %u\n"
              "cells.\n", 256u);
  return 0;
}
