#!/usr/bin/env python3
"""Determinism lint for the simulator sources.

Every experiment in this repo is required to be bit-reproducible from
its parameters (docs/SIMULATOR.md): the DES kernel breaks timestamp
ties with a monotone sequence number, the sweep runner produces
byte-identical CSV at every job count, and the workloads take explicit
seeds.  That guarantee is easy to destroy with one careless line, and
the compiler will not complain.  This lint rejects the known sources of
nondeterminism at review time:

  * wall-clock and libc randomness — rand()/srand()/random_device,
    time()/gettimeofday()/chrono clocks — anything that makes a run
    depend on when or where it executed;
  * iteration over unordered containers — hash iteration order varies
    across libstdc++ versions and ASLR, so any range-for over a
    std::unordered_{map,set} member is flagged unless the loop body is
    demonstrably order-independent;
  * pointer-keyed ordered containers (std::map/std::set keyed on T*) —
    ordered by allocation address, i.e. by ASLR;
  * raw std::unordered_{map,set} declarations in the NIC/net control
    path (src/nic, src/net) — those tables hold per-message protocol
    state and must use the deterministic pooled containers from
    common/dense.hpp (DenseNodeTable, FlatMap) so no CSV or counter can
    ever depend on hash-bucket order or per-message allocation.

A finding can be waived by putting a comment containing
`determinism: ok` on the flagged line or the line above it, with a
justification (grep for existing waivers for the expected style).

Usage: determinism_lint.py [DIR ...]     (default: src/)
Exit status: 0 clean, 1 findings, 2 usage error.
"""

from __future__ import annotations

import pathlib
import re
import sys

SOURCE_SUFFIXES = {".cpp", ".hpp", ".h", ".cc"}

WAIVER = "determinism: ok"

# Each entry: (human label, compiled regex).  Patterns are matched per
# line after comment stripping, so commented-out code cannot trip them.
BANNED = [
    ("libc rand()", re.compile(r"(?<![\w:])s?rand\s*\(")),
    ("std::random_device", re.compile(r"\brandom_device\b")),
    ("wall-clock time()", re.compile(r"(?<![\w:_.])time\s*\(\s*(?:NULL|nullptr|0)?\s*\)")),
    ("gettimeofday()", re.compile(r"\bgettimeofday\s*\(")),
    ("chrono wall clock", re.compile(r"\b(?:system_clock|steady_clock|high_resolution_clock)\b")),
    ("pointer-keyed std::map/set", re.compile(r"\bstd::(?:multi)?(?:map|set)\s*<[^,>]*\*")),
    # The host's core count must never leak into a simulated result:
    # shard counts, sweep partitioning, and every simulation parameter
    # come from explicit flags/params.  Using it to size a pool of
    # *independent* host threads (whose outputs land in per-index slots)
    # is fine — waive those with a justification.
    ("hardware_concurrency (must not shape simulated results)",
     re.compile(r"\bhardware_concurrency\b")),
]

UNORDERED_DECL = re.compile(
    r"\bstd::unordered_(?:multi)?(?:map|set)\s*<[^;]*>\s+(\w+)\s*[;{=]")
RANGE_FOR = re.compile(r"\bfor\s*\([^():]*:\s*(?:this->)?(\w+)\s*\)")

# Directories whose per-message tables must be the deterministic pooled
# containers (common/dense.hpp) rather than raw unordered maps; any
# std::unordered_{map,set} declared here is flagged even if never
# iterated (the next edit might iterate it).
CONTROL_PATH_DIRS = {"nic", "net"}
UNORDERED_ANY = re.compile(r"\bstd::unordered_(?:multi)?(?:map|set)\b")


def strip_comments(line: str) -> str:
    """Remove // and /* */ comment text from one line (approximate: the
    sources do not use multi-line /* */ blocks mid-statement)."""
    line = re.sub(r"/\*.*?\*/", "", line)
    return line.split("//", 1)[0]


def collect_unordered_members(files: list[pathlib.Path]) -> set[str]:
    """Names of members/locals declared as unordered containers anywhere
    in the linted tree (declaration and iteration often live in
    different files: member in the .hpp, loop in the .cpp)."""
    names: set[str] = set()
    for path in files:
        for line in path.read_text(encoding="utf-8").splitlines():
            m = UNORDERED_DECL.search(strip_comments(line))
            if m:
                names.add(m.group(1))
    return names


def waived(lines: list[str], lineno: int) -> bool:
    """True if the flagged line, or the comment block immediately above
    it, carries a `determinism: ok` waiver."""
    if WAIVER in lines[lineno - 1]:
        return True
    i = lineno - 2
    while i >= 0 and lines[i].lstrip().startswith("//"):
        if WAIVER in lines[i]:
            return True
        i -= 1
    return False


def lint_file(path: pathlib.Path, unordered: set[str]) -> list[str]:
    findings = []
    control_path = bool(CONTROL_PATH_DIRS & set(path.parts))
    lines = path.read_text(encoding="utf-8").splitlines()
    for lineno, raw in enumerate(lines, start=1):
        if waived(lines, lineno):
            continue
        code = strip_comments(raw)
        for label, pattern in BANNED:
            if pattern.search(code):
                findings.append(
                    f"{path}:{lineno}: {label}: {raw.strip()}")
        if control_path and UNORDERED_ANY.search(code):
            findings.append(
                f"{path}:{lineno}: raw unordered container on the NIC/net "
                f"control path (use common/dense.hpp DenseNodeTable/FlatMap):"
                f" {raw.strip()}")
        m = RANGE_FOR.search(code)
        if m and m.group(1) in unordered:
            findings.append(
                f"{path}:{lineno}: iteration over unordered container "
                f"'{m.group(1)}' (hash order is not deterministic): "
                f"{raw.strip()}")
    return findings


def main(argv: list[str]) -> int:
    roots = [pathlib.Path(a) for a in argv[1:]] or [pathlib.Path("src")]
    files: list[pathlib.Path] = []
    for root in roots:
        if root.is_file():
            files.append(root)
        elif root.is_dir():
            files.extend(
                p for p in sorted(root.rglob("*"))
                if p.suffix in SOURCE_SUFFIXES)
        else:
            print(f"determinism_lint: no such path: {root}", file=sys.stderr)
            return 2

    unordered = collect_unordered_members(files)
    findings: list[str] = []
    for path in files:
        findings.extend(lint_file(path, unordered))

    for finding in findings:
        print(finding)
    if findings:
        print(f"determinism_lint: {len(findings)} finding(s) in "
              f"{len(files)} files", file=sys.stderr)
        return 1
    print(f"determinism_lint: clean ({len(files)} files)", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
