#!/usr/bin/env python3
"""Compatibility shim: the determinism lint grew into the rule-based
project linter at tools/lint/.  This entry point keeps the old CLI
(`determinism_lint.py [DIR|FILE ...]`, exit 0 clean / 1 findings /
2 usage) and the legacy ``determinism: ok`` waiver comments working;
new code and CI should invoke ``python3 tools/lint/lint.py`` directly,
which adds per-rule waivers, --format json and rule self-tests.
"""

from __future__ import annotations

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1]))

from tools.lint.lint import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main(sys.argv))
