#!/usr/bin/env bash
# Build everything, run the full test suite, regenerate every table and
# figure, and run the examples — the complete reproduction in one step.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build --output-on-failure 2>&1 | tee test_output.txt

{
  for b in build/bench/*; do
    echo "===================================================================="
    echo "== $b"
    echo "===================================================================="
    "$b"
    echo
  done
} 2>&1 | tee bench_output.txt

for e in quickstart ping_pong halo_exchange unexpected_flood \
         portals_offload multi_process; do
  echo "== examples/$e =="
  "./build/examples/$e"
  echo
done
