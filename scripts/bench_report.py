#!/usr/bin/env python3
"""Run the match-engine wall-clock benchmark and emit/check its JSON.

Runs `bench_alpu_micro --json`, writes the result as BENCH_alpu_match.json
(ns per probe at 64/128/256 cells plus the full-machine events/s rate),
and optionally gates against a checked-in baseline:

    scripts/bench_report.py                         # run, write JSON
    scripts/bench_report.py --iters 200000          # reduced CI budget
    scripts/bench_report.py --check bench/baselines/alpu_match.json

`--check` fails (exit 1) if any ns-per-probe metric regresses by more
than the allowed factor (default 2x) against the baseline.  Only
slowdowns fail: faster-than-baseline results always pass, and events/s
is reported but never gated (it swings with host load far more than the
tight probe loops do).
"""

import argparse
import json
import pathlib
import subprocess
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_BENCH = REPO / "build" / "bench" / "bench_alpu_micro"
DEFAULT_OUT = REPO / "BENCH_alpu_match.json"


def run_bench(bench: pathlib.Path, iters: int, out_path: pathlib.Path) -> dict:
    if not bench.exists():
        sys.exit(f"benchmark binary not found: {bench} (build the repo first)")
    cmd = [str(bench), "--iters", str(iters), "--json", str(out_path)]
    print(f"+ {' '.join(cmd)}", flush=True)
    subprocess.run(cmd, check=True, stdout=subprocess.DEVNULL)
    with open(out_path) as f:
        return json.load(f)


def check(result: dict, baseline: dict, max_ratio: float) -> int:
    """Compare ns-per-probe metrics; return the number of regressions."""
    failures = 0
    for section in ("match_ns_per_probe", "match_tree_ns_per_probe"):
        for cells, base_ns in baseline.get(section, {}).items():
            got = result.get(section, {}).get(cells)
            if got is None:
                print(f"MISSING {section}[{cells}] in result")
                failures += 1
                continue
            ratio = got / base_ns if base_ns > 0 else float("inf")
            verdict = "FAIL" if ratio > max_ratio else "ok"
            print(f"{verdict:4} {section}[{cells}]: {got:.2f} ns vs "
                  f"baseline {base_ns:.2f} ns ({ratio:.2f}x)")
            if ratio > max_ratio:
                failures += 1
    base_eps = baseline.get("events_per_sec")
    got_eps = result.get("events_per_sec")
    if base_eps and got_eps:
        print(f"info events_per_sec: {got_eps:.0f} vs baseline "
              f"{base_eps:.0f} (not gated)")
    return failures


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--bench", type=pathlib.Path, default=DEFAULT_BENCH,
                    help="path to the bench_alpu_micro binary")
    ap.add_argument("--iters", type=int, default=2_000_000,
                    help="probe iterations per shape (reduce for CI)")
    ap.add_argument("--out", type=pathlib.Path, default=DEFAULT_OUT,
                    help="where to write the JSON result")
    ap.add_argument("--check", type=pathlib.Path, default=None,
                    help="baseline JSON to gate against")
    ap.add_argument("--max-ratio", type=float, default=2.0,
                    help="fail --check when result/baseline exceeds this")
    args = ap.parse_args()

    result = run_bench(args.bench, args.iters, args.out)
    print(f"wrote {args.out}")
    for cells, ns in sorted(result.get("match_ns_per_probe", {}).items(),
                            key=lambda kv: int(kv[0])):
        print(f"  match @ {cells:>3} cells: {ns:8.2f} ns/probe")
    for cells, ns in result.get("match_tree_ns_per_probe", {}).items():
        print(f"  match_tree @ {cells:>3} cells: {ns:8.2f} ns/probe")
    eps = result.get("events_per_sec")
    if eps:
        print(f"  full-machine rate: {eps:.0f} events/s")

    if args.check is not None:
        with open(args.check) as f:
            baseline = json.load(f)
        failures = check(result, baseline, args.max_ratio)
        if failures:
            print(f"{failures} metric(s) regressed more than "
                  f"{args.max_ratio}x", file=sys.stderr)
            return 1
        print("perf check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
