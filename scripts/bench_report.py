#!/usr/bin/env python3
"""Run a wall-clock benchmark suite and emit/check its JSON.

Three suites:

  * alpu_match (default): `bench_alpu_micro --json`, written as
    BENCH_alpu_match.json (ns per probe at 64/128/256 cells plus the
    full-machine events/s rate);
  * engine: `bench_engine --json`, written as BENCH_engine.json (DES
    kernel churn events/s, 16-node machine events/s at 1 shard, and the
    informational sharded wall-clock speedup);
  * message_rate: `bench_message_rate --json`, written as
    BENCH_message_rate.json (wall-clock ns per simulated MPI message for
    the control-path grid: baseline/ALPU NICs with short and long
    standing queues plus a rendezvous-sized point).

    scripts/bench_report.py                          # run, write JSON
    scripts/bench_report.py --iters 200000           # reduced CI budget
    scripts/bench_report.py --check bench/baselines/alpu_match.json
    scripts/bench_report.py --suite engine \\
        --check bench/baselines/engine.json
    scripts/bench_report.py --suite message_rate \\
        --check bench/baselines/message_rate.json

`--check` fails (exit 1) if any gated metric regresses by more than the
allowed factor (default 2x) against the baseline.  Only slowdowns fail:
faster-than-baseline results always pass.  The alpu_match events/s and
the engine suite's shard_speedup are reported but never gated (the
speedup needs as many cores as shards to mean anything; CI runners
rarely have them).
"""

import argparse
import json
import pathlib
import subprocess
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
BENCH_DIR = REPO / "build" / "bench"
SUITES = {
    "alpu_match": {
        "binary": "bench_alpu_micro",
        "out": "BENCH_alpu_match.json",
        "default_iters": 2_000_000,
    },
    "engine": {
        "binary": "bench_engine",
        "out": "BENCH_engine.json",
        "default_iters": 2_000_000,
    },
    "message_rate": {
        "binary": "bench_message_rate",
        "out": "BENCH_message_rate.json",
        "default_iters": 16_384,
    },
}


def run_bench(bench: pathlib.Path, iters: int, out_path: pathlib.Path) -> dict:
    if not bench.exists():
        sys.exit(f"benchmark binary not found: {bench} (build the repo first)")
    cmd = [str(bench), "--iters", str(iters), "--json", str(out_path)]
    print(f"+ {' '.join(cmd)}", flush=True)
    subprocess.run(cmd, check=True, stdout=subprocess.DEVNULL)
    with open(out_path) as f:
        return json.load(f)


def check_engine(result: dict, baseline: dict, max_ratio: float) -> int:
    """Gate the engine suite's events/s rates (slowdown-only)."""
    failures = 0
    for key in ("engine_events_per_sec", "machine_events_per_sec"):
        base = baseline.get(key)
        got = result.get(key)
        if base is None:
            continue
        if got is None:
            print(f"MISSING {key} in result")
            failures += 1
            continue
        # Throughput metric: the regression ratio is baseline/result.
        ratio = base / got if got > 0 else float("inf")
        verdict = "FAIL" if ratio > max_ratio else "ok"
        print(f"{verdict:4} {key}: {got:.0f} /s vs baseline {base:.0f} /s "
              f"({ratio:.2f}x slower)" if ratio >= 1 else
              f"{verdict:4} {key}: {got:.0f} /s vs baseline {base:.0f} /s "
              f"({1 / ratio:.2f}x faster)")
        if ratio > max_ratio:
            failures += 1
    speedup = result.get("shard_speedup")
    if speedup is not None:
        print(f"info shard_speedup: {speedup:.2f}x wall-clock at "
              f"{result.get('shards', '?')} shards (not gated)")
    return failures


def check_message_rate(result: dict, baseline: dict, max_ratio: float) -> int:
    """Gate wall-clock ns/message per grid point (slowdown-only)."""
    failures = 0
    for point, base_ns in baseline.get("wall_ns_per_message", {}).items():
        got = result.get("wall_ns_per_message", {}).get(point)
        if got is None:
            print(f"MISSING wall_ns_per_message[{point}] in result")
            failures += 1
            continue
        ratio = got / base_ns if base_ns > 0 else float("inf")
        verdict = "FAIL" if ratio > max_ratio else "ok"
        print(f"{verdict:4} {point}: {got:.0f} ns/message vs "
              f"baseline {base_ns:.0f} ns ({ratio:.2f}x)")
        if ratio > max_ratio:
            failures += 1
    # Simulated gaps are representation-independent; report, never gate.
    for point, gap in result.get("sim_gap_ns", {}).items():
        base_gap = baseline.get("sim_gap_ns", {}).get(point)
        if base_gap is not None and abs(gap - base_gap) > 1e-6:
            print(f"WARN {point}: sim gap moved "
                  f"({gap:.3f} ns vs {base_gap:.3f} ns) — the simulation "
                  f"itself changed, not just the wall clock")
    return failures


def check(result: dict, baseline: dict, max_ratio: float) -> int:
    """Compare ns-per-probe metrics; return the number of regressions."""
    failures = 0
    for section in ("match_ns_per_probe", "match_tree_ns_per_probe"):
        for cells, base_ns in baseline.get(section, {}).items():
            got = result.get(section, {}).get(cells)
            if got is None:
                print(f"MISSING {section}[{cells}] in result")
                failures += 1
                continue
            ratio = got / base_ns if base_ns > 0 else float("inf")
            verdict = "FAIL" if ratio > max_ratio else "ok"
            print(f"{verdict:4} {section}[{cells}]: {got:.2f} ns vs "
                  f"baseline {base_ns:.2f} ns ({ratio:.2f}x)")
            if ratio > max_ratio:
                failures += 1
    base_eps = baseline.get("events_per_sec")
    got_eps = result.get("events_per_sec")
    if base_eps and got_eps:
        print(f"info events_per_sec: {got_eps:.0f} vs baseline "
              f"{base_eps:.0f} (not gated)")
    return failures


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--suite", choices=sorted(SUITES), default="alpu_match",
                    help="which benchmark suite to run")
    ap.add_argument("--bench", type=pathlib.Path, default=None,
                    help="path to the benchmark binary (default: the "
                         "suite's binary under build/bench)")
    ap.add_argument("--iters", type=int, default=None,
                    help="iterations (reduce for CI)")
    ap.add_argument("--out", type=pathlib.Path, default=None,
                    help="where to write the JSON result")
    ap.add_argument("--check", type=pathlib.Path, default=None,
                    help="baseline JSON to gate against")
    ap.add_argument("--max-ratio", type=float, default=2.0,
                    help="fail --check when the regression factor "
                         "exceeds this")
    args = ap.parse_args()

    suite = SUITES[args.suite]
    bench = args.bench or BENCH_DIR / suite["binary"]
    iters = args.iters if args.iters is not None else suite["default_iters"]
    out = args.out or REPO / suite["out"]

    result = run_bench(bench, iters, out)
    print(f"wrote {out}")
    if args.suite == "engine":
        print(f"  engine churn:  {result.get('engine_events_per_sec', 0):.0f}"
              f" events/s")
        print(f"  machine rate:  "
              f"{result.get('machine_events_per_sec', 0):.0f} events/s")
        print(f"  shard speedup: {result.get('shard_speedup', 0):.2f}x at "
              f"{result.get('shards', '?')} shards")
    elif args.suite == "message_rate":
        for point, ns in result.get("wall_ns_per_message", {}).items():
            gap = result.get("sim_gap_ns", {}).get(point, 0.0)
            print(f"  {point:>16}: {ns:10.0f} ns/message wall "
                  f"(sim gap {gap:.1f} ns)")
    else:
        for cells, ns in sorted(result.get("match_ns_per_probe", {}).items(),
                                key=lambda kv: int(kv[0])):
            print(f"  match @ {cells:>3} cells: {ns:8.2f} ns/probe")
        for cells, ns in result.get("match_tree_ns_per_probe", {}).items():
            print(f"  match_tree @ {cells:>3} cells: {ns:8.2f} ns/probe")
        eps = result.get("events_per_sec")
        if eps:
            print(f"  full-machine rate: {eps:.0f} events/s")

    if args.check is not None:
        with open(args.check) as f:
            baseline = json.load(f)
        checker = {"engine": check_engine,
                   "message_rate": check_message_rate}.get(args.suite, check)
        failures = checker(result, baseline, args.max_ratio)
        if failures:
            print(f"{failures} metric(s) regressed more than "
                  f"{args.max_ratio}x", file=sys.stderr)
            return 1
        print("perf check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
